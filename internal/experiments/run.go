package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Runner executes one experiment and writes its tables/figures to opt.Out.
type Runner struct {
	ID    string
	Paper string // which paper artifact it regenerates
	Run   func(opt Options) error
}

// Registry lists every experiment, keyed by id.
func Registry() []Runner {
	return []Runner{
		{"fig1a", "Figure 1(a) — accuracy per time slot under data shift", func(o Options) error {
			fig := RunFig1a(o)
			fig.Fprint(o.Out)
			if o.Points {
				fig.FprintPoints(o.Out)
			}
			return nil
		}},
		{"fig1b", "Figure 1(b) — inference latency vs co-running processes", func(o Options) error {
			RunFig1b(o).Fprint(o.Out)
			return nil
		}},
		{"fig2", "Figure 2 — heterogeneous device resources survey", func(o Options) error {
			for _, t := range RunFig2(o) {
				t.Fprint(o.Out)
				fmt.Fprintln(o.Out)
			}
			return nil
		}},
		{"table1", "Table 1 — accuracy of all systems after one adaptation step", func(o Options) error {
			RunTable1(o).Fprint(o.Out)
			return nil
		}},
		{"fig7", "Figure 7 — communication cost during adaptation", func(o Options) error {
			RunFig7(o).Fprint(o.Out)
			return nil
		}},
		{"fig8", "Figure 8 — memory footprint during adaptation", func(o Options) error {
			RunFig8(o).Fprint(o.Out)
			return nil
		}},
		{"fig9", "Figure 9 — training latency during adaptation", func(o Options) error {
			RunFig9(o).Fprint(o.Out)
			return nil
		}},
		{"fig10", "Figure 10 — accuracy over repeated adaptation steps", func(o Options) error {
			for _, r := range RunContinuous(o) {
				r.Fig.Fprint(o.Out)
				if o.Points {
					r.Fig.FprintPoints(o.Out)
				}
				if r.Faults != nil {
					r.Faults.Fprint(o.Out)
				}
				fmt.Fprintln(o.Out)
			}
			return nil
		}},
		{"fig11", "Figure 11 — average adaptation accuracy and time", func(o Options) error {
			Fig11Table(RunContinuous(o)).Fprint(o.Out)
			return nil
		}},
		{"fig12", "Figure 12 — sub-model accuracy vs size landscape", func(o Options) error {
			for _, t := range RunFig12(o) {
				t.Fprint(o.Out)
				fmt.Fprintln(o.Out)
			}
			return nil
		}},
		{"fig13a", "Figure 13(a) — impact of on-device resources", func(o Options) error {
			RunFig13a(o).Fprint(o.Out)
			return nil
		}},
		{"fig13b", "Figure 13(b) — impact of module granularity", func(o Options) error {
			RunFig13b(o).Fprint(o.Out)
			return nil
		}},
		{"fig13c", "Figure 13(c) — impact of participating devices", func(o Options) error {
			RunFig13c(o).Fprint(o.Out)
			return nil
		}},
		{"ablations", "Design-choice ablations beyond the paper's figures", func(o Options) error {
			RunAblations(o).Fprint(o.Out)
			return nil
		}},
		{"faults", "Robustness — adaptation over a seeded lossy link (beyond the paper)", func(o Options) error {
			r := RunFaults(o)
			r.Table.Fprint(o.Out)
			r.Counters.Fprint(o.Out)
			return nil
		}},
		{"straggler", "Straggler stall — bulk-sync vs semi-async rounds under churn (beyond the paper)", func(o Options) error {
			r := RunStraggler(o)
			r.Table.Fprint(o.Out)
			r.FprintGate(o.Out)
			return nil
		}},
		{"compress", "Wire-format v2 — exact vs delta-quantized sub-model exchange (beyond the paper)", func(o Options) error {
			r := RunCompress(o)
			r.Table.Fprint(o.Out)
			r.FprintGate(o.Out)
			return nil
		}},
	}
}

// IDs returns the sorted experiment ids.
func IDs() []string {
	var ids []string
	for _, r := range Registry() {
		ids = append(ids, r.ID)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by id, or all of them for id == "all".
func Run(id string, opt Options) error {
	if id == "all" {
		for _, r := range Registry() {
			fmt.Fprintf(opt.Out, "### %s: %s\n", r.ID, r.Paper)
			if err := r.Run(opt); err != nil {
				return fmt.Errorf("%s: %w", r.ID, err)
			}
			fmt.Fprintln(opt.Out)
		}
		return nil
	}
	for _, r := range Registry() {
		if r.ID == id {
			return r.Run(opt)
		}
	}
	return fmt.Errorf("unknown experiment %q; available: %s or 'all'", id, strings.Join(IDs(), ", "))
}

// WriteIndex prints the experiment index (id → paper artifact).
func WriteIndex(w io.Writer) {
	for _, r := range Registry() {
		fmt.Fprintf(w, "%-8s %s\n", r.ID, r.Paper)
	}
}
