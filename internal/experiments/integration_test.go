package experiments

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/edgenet"
	"repro/internal/fed"
	"repro/internal/modular"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// TestFullPipelineIntegration drives the whole stack end to end: offline
// training through the core façade, a traced online adaptation step, a
// checkpoint round-trip of the cloud model, and serving the restored model
// over the real TCP protocol to an edge client.
func TestFullPipelineIntegration(t *testing.T) {
	const seed = 31
	task := fed.HARTask(seed, fed.ScaleQuick)
	cfg := fed.DefaultConfig()
	cfg.Rounds = 1
	cfg.DevicesPerRound = 3
	cfg.TestPerDevice = 30

	// 1. Offline stage via the façade.
	sys := core.NewSystem(task, cfg, seed)
	sys.Strategy.TrainCfg.Epochs = 2
	rng := tensor.NewRNG(seed)
	proxy := data.MakeBalancedDataset(rng, task.Gen, data.DefaultEnv(), 15)
	sys.OfflineTrain(proxy)

	// 2. Traced online adaptation.
	var traceBuf bytes.Buffer
	sys.Strategy.Trace = trace.New(&traceBuf)
	fleet := data.NewFleet(rng, task.Gen, data.PartitionConfig{
		NumDevices: 5, ClassesPerDevice: 2, MinVolume: 30, MaxVolume: 50,
	})
	clients := fed.NewClients(rng, fleet)
	sys.AdaptStep(clients)
	acc := sys.Accuracy(clients)
	if acc < 0.3 {
		t.Fatalf("pipeline accuracy %.3f implausible", acc)
	}
	events, err := trace.Read(&traceBuf)
	if err != nil || len(events) == 0 {
		t.Fatalf("trace: %v (%d events)", err, len(events))
	}

	// 3. Checkpoint the adapted cloud model and restore into a fresh
	// skeleton.
	var ckpt bytes.Buffer
	if err := modular.SaveCheckpoint(&ckpt, sys.CloudModel()); err != nil {
		t.Fatal(err)
	}
	restored := task.BuildModular(tensor.NewRNG(seed))
	if err := modular.LoadCheckpoint(&ckpt, restored); err != nil {
		t.Fatal(err)
	}

	// 4. Serve the restored model over TCP; an edge client fetches a
	// sub-model and its outputs must match a cloud-side extraction.
	srv := edgenet.NewServer(restored, 1)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var clientErr error
	go func() {
		defer wg.Done()
		skeleton := task.BuildModular(tensor.NewRNG(seed))
		cl, err := edgenet.Dial(addr, 1, skeleton)
		if err != nil {
			clientErr = err
			return
		}
		defer cl.Close()
		// This test pins the exact-transfer contract: fetched outputs must be
		// bit-identical to a cloud-side extraction. Protocol v2 payloads are
		// deliberately lossy (quantized), so force v1 here; v2 closeness has
		// its own tests in internal/edgenet.
		cl.MaxProto = edgenet.ProtoV1
		if err := cl.Hello(); err != nil {
			clientErr = err
			return
		}
		probe := tensor.New(8, 64)
		tensor.NewRNG(99).FillNormal(probe, 0, 1)
		imp := skeleton.Importance(probe)
		sub, err := cl.FetchSubModel(imp, modular.Budget{CommBytes: 1e12, FwdFLOPs: 1e12, MemElems: 1e12})
		if err != nil {
			clientErr = err
			return
		}
		want := restored.Extract(sub.Mapping)
		a := sub.Forward(probe, false)
		b := want.Forward(probe, false)
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				clientErr = errMismatch
				return
			}
		}
	}()
	wg.Wait()
	if clientErr != nil {
		t.Fatal(clientErr)
	}
}

var errMismatch = &mismatchErr{}

type mismatchErr struct{}

func (*mismatchErr) Error() string { return "remote sub-model diverges from cloud extraction" }
