package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Admin is the opt-in telemetry HTTP server. It mounts:
//
//	/healthz                 liveness ("ok")
//	/metrics                 Prometheus text exposition (canonical, no timestamps)
//	/metrics.json            the same snapshot as JSON
//	/statusz                 human-readable snapshot (state, key counters, sections)
//	/debug/pprof/...         net/http/pprof (profile, heap, goroutine, trace, ...)
//
// The server is read-only: nothing it serves can mutate registry or
// simulation state, which is half of the artifact-neutrality contract
// (the other half is that scraping performs only atomic loads).
type Admin struct {
	regs []*Registry

	mu       sync.Mutex
	sections []statusSection
	extra    map[string]http.Handler

	// scrapeErrs counts responses that failed mid-write (client gone,
	// connection reset). A scrape that dies half-delivered used to vanish
	// without a trace — the handlers dropped every write error — so a
	// monitoring outage looked identical to healthy silence.
	scrapeErrs atomic.Int64

	state   atomic.Value // string: "starting" → "running" → "quiescent"
	started Stopwatch

	srv  *http.Server
	ln   net.Listener
	done chan struct{}
}

type statusSection struct {
	title string
	fn    func(io.Writer)
}

// NewAdmin builds an admin server over one or more registries; their
// snapshots are merged at scrape time (names sorted across all of them).
func NewAdmin(regs ...*Registry) *Admin {
	a := &Admin{regs: regs, done: make(chan struct{}), started: StartTimer()}
	a.state.Store("starting")
	return a
}

// SetState publishes the run state shown by /statusz ("running",
// "quiescent", ...). ci.sh polls it to detect quiescence before asserting
// scrape stability.
func (a *Admin) SetState(s string) {
	if a != nil {
		a.state.Store(s)
	}
}

// State returns the current published state.
func (a *Admin) State() string {
	if a == nil {
		return ""
	}
	return a.state.Load().(string)
}

// AddSection appends a custom /statusz section rendered by fn.
func (a *Admin) AddSection(title string, fn func(io.Writer)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sections = append(a.sections, statusSection{title: title, fn: fn})
}

// AddHandler mounts an extra read-only endpoint (e.g. the span flight
// recorder's /spans). Call before Listen; the mux is built once at bind time.
func (a *Admin) AddHandler(path string, h http.Handler) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.extra == nil {
		a.extra = map[string]http.Handler{}
	}
	a.extra[path] = h
}

// ScrapeErrors reports how many HTTP responses failed mid-write.
func (a *Admin) ScrapeErrors() int64 { return a.scrapeErrs.Load() }

// Listen binds addr (e.g. "127.0.0.1:0") and serves in the background,
// returning the bound address. Close shuts the listener down and waits for
// the serve loop.
func (a *Admin) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: admin listen %s: %w", addr, err)
	}
	a.ln = ln
	a.srv = &http.Server{Handler: a.handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		// Serve returns http.ErrServerClosed on Close; anything else means
		// the admin plane died, which /healthz consumers will notice.
		_ = a.srv.Serve(ln)
		close(a.done)
	}()
	return ln.Addr().String(), nil
}

// Close stops the server and waits for the serve loop to exit.
func (a *Admin) Close() error {
	if a == nil || a.srv == nil {
		return nil
	}
	err := a.srv.Close()
	<-a.done
	return err
}

// snapshot merges all registries' families.
func (a *Admin) snapshot() []Family {
	snaps := make([][]Family, 0, len(a.regs))
	for _, r := range a.regs {
		snaps = append(snaps, r.Snapshot())
	}
	return MergeSnapshots(snaps...)
}

// stickyWriter forwards writes until the first error, then swallows the
// rest. It keeps the error readable so a handler can count one failed
// scrape instead of silently dropping every subsequent write error — the
// same errdrop class the edgenet sweep fixed on the wire path.
type stickyWriter struct {
	w   io.Writer
	err error
}

func (s *stickyWriter) Write(p []byte) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	n, err := s.w.Write(p)
	if err != nil {
		s.err = err
	}
	return n, err
}

// serveText runs one read-only handler body through a stickyWriter. A
// response write failure cannot be salvaged — the header is already out —
// but it must not vanish either: the failed scrape is counted, and the
// count is visible on /statusz.
func (a *Admin) serveText(w http.ResponseWriter, contentType string, body func(io.Writer) error) {
	w.Header().Set("Content-Type", contentType)
	sw := &stickyWriter{w: w}
	err := body(sw)
	if err == nil {
		err = sw.err
	}
	if err != nil {
		a.scrapeErrs.Add(1)
	}
}

func (a *Admin) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		a.serveText(w, "text/plain; charset=utf-8", func(out io.Writer) error {
			_, err := fmt.Fprintln(out, "ok")
			return err
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		a.serveText(w, "text/plain; version=0.0.4; charset=utf-8", func(out io.Writer) error {
			return WritePrometheus(out, a.snapshot())
		})
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		a.serveText(w, "application/json; charset=utf-8", func(out io.Writer) error {
			return WriteJSON(out, a.snapshot())
		})
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		a.serveText(w, "text/plain; charset=utf-8", func(out io.Writer) error {
			a.writeStatus(out)
			return nil // write failures surface via the stickyWriter
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	a.mu.Lock()
	paths := make([]string, 0, len(a.extra))
	//nolint:maporder -- keys are collected for sorting right below
	for p := range a.extra {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		mux.Handle(p, a.extra[p])
	}
	a.mu.Unlock()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		a.serveText(w, "text/plain; charset=utf-8", func(out io.Writer) error {
			_, err := fmt.Fprintln(out, "nebula admin endpoints: /healthz /metrics /metrics.json /statusz /debug/pprof/")
			return err
		})
	})
	return mux
}

// writeStatus renders the human-readable snapshot: run state, uptime, then
// every counter/gauge with light unit formatting and histograms as
// count/mean digests, then the registered custom sections.
func (a *Admin) writeStatus(w io.Writer) {
	fmt.Fprintf(w, "state:  %s\n", a.State())
	fmt.Fprintf(w, "uptime: %s\n", a.started.Elapsed().Round(time.Millisecond))
	if n := a.scrapeErrs.Load(); n > 0 {
		fmt.Fprintf(w, "scrape errors: %d\n", n)
	}
	for _, f := range a.snapshot() {
		fmt.Fprintf(w, "\n%s (%s)", f.Name, f.Type)
		if f.Help != "" {
			fmt.Fprintf(w, " — %s", f.Help)
		}
		fmt.Fprintln(w)
		for _, p := range f.Points {
			label := p.Labels
			if label == "" {
				label = "-"
			}
			if f.Type == TypeHistogram {
				mean := 0.0
				if p.Count > 0 {
					mean = p.Sum / float64(p.Count)
				}
				fmt.Fprintf(w, "  %-40s count=%d sum=%s mean=%s\n", label, p.Count,
					humanize(f.Name, p.Sum), humanize(f.Name, mean))
				continue
			}
			fmt.Fprintf(w, "  %-40s %s\n", label, humanize(f.Name, p.Value))
		}
	}
	a.mu.Lock()
	sections := append([]statusSection(nil), a.sections...)
	a.mu.Unlock()
	for _, s := range sections {
		fmt.Fprintf(w, "\n== %s ==\n", s.title)
		s.fn(w)
	}
}

// humanize applies unit formatting keyed off the metric name suffixing
// convention (docs/OBSERVABILITY.md): *_bytes* gets binary units,
// *_seconds* gets duration units, everything else plain numbers.
func humanize(name string, v float64) string {
	switch {
	case strings.Contains(name, "bytes"):
		return fmtBytesHuman(v)
	case strings.Contains(name, "seconds"):
		return fmtSecondsHuman(v)
	default:
		return fmtVal(v)
	}
}

func fmtBytesHuman(v float64) string {
	const unit = 1024.0
	if v < unit {
		return fmt.Sprintf("%s B", fmtVal(v))
	}
	exp := 0
	for v >= unit && exp < 6 {
		v /= unit
		exp++
	}
	return fmt.Sprintf("%.2f %ciB", v, "KMGTPE"[exp-1])
}

func fmtSecondsHuman(v float64) string {
	switch {
	case v == 0:
		return "0 s"
	case v < 1e-3:
		return fmt.Sprintf("%.1f µs", v*1e6)
	case v < 1:
		return fmt.Sprintf("%.1f ms", v*1e3)
	case v < 120:
		return fmt.Sprintf("%.2f s", v)
	default:
		return fmt.Sprintf("%.1f min", v/60)
	}
}

// SortedNames returns the family names of a snapshot (a convenience for
// tests and statusz-style digests).
func SortedNames(fams []Family) []string {
	out := make([]string, 0, len(fams))
	for _, f := range fams {
		out = append(out, f.Name)
	}
	sort.Strings(out)
	return out
}
