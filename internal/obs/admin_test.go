package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func adminGet(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Help("nebula_round_total", "Completed rounds.")
	r.Counter("nebula_round_total").Add(3)
	r.Gauge("nebula_bytes_up").Set(2048)
	r.Histogram("nebula_phase_seconds", []float64{0.1, 1}, "phase", "train").Observe(0.05)

	a := NewAdmin(r)
	a.AddSection("pool", func(w io.Writer) { fmt.Fprintln(w, "workers: 4") })
	addr, err := a.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	if code, body := adminGet(t, addr, "/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body := adminGet(t, addr, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# HELP nebula_round_total Completed rounds.",
		"# TYPE nebula_round_total counter",
		"nebula_round_total 3",
		"nebula_bytes_up 2048",
		`nebula_phase_seconds_bucket{phase="train",le="0.1"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	// Byte-stability at quiescence: two scrapes must be identical.
	_, again := adminGet(t, addr, "/metrics")
	if body != again {
		t.Fatalf("/metrics not byte-stable:\n--- 1 ---\n%s--- 2 ---\n%s", body, again)
	}

	if code, body := adminGet(t, addr, "/metrics.json"); code != 200 || !strings.Contains(body, `"nebula_round_total"`) {
		t.Fatalf("/metrics.json = %d %q", code, body)
	}

	a.SetState("running")
	code, body = adminGet(t, addr, "/statusz")
	if code != 200 {
		t.Fatalf("/statusz = %d", code)
	}
	for _, want := range []string{"state:  running", "nebula_round_total", "2.00 KiB", "== pool ==", "workers: 4"} {
		if !strings.Contains(body, want) {
			t.Errorf("/statusz missing %q in:\n%s", want, body)
		}
	}

	if code, body := adminGet(t, addr, "/debug/pprof/goroutine?debug=1"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof goroutine = %d %q", code, body)
	}

	if code, _ := adminGet(t, addr, "/no-such"); code != 404 {
		t.Fatalf("unknown path = %d, want 404", code)
	}
	if code, body := adminGet(t, addr, "/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index = %d %q", code, body)
	}
}

func TestAdminMergesRegistries(t *testing.T) {
	a := NewRegistry()
	a.Counter("nebula_from_a_total").Inc()
	b := NewRegistry()
	b.Counter("nebula_from_b_total").Inc()
	adm := NewAdmin(a, b)
	addr, err := adm.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	_, body := adminGet(t, addr, "/metrics")
	ia, ib := strings.Index(body, "nebula_from_a_total"), strings.Index(body, "nebula_from_b_total")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("merged exposition wrong:\n%s", body)
	}
}

func TestAdminCloseIsIdempotentAndNilSafe(t *testing.T) {
	var nilAdm *Admin
	if err := nilAdm.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	nilAdm.SetState("x")
	if s := nilAdm.State(); s != "" {
		t.Fatalf("nil State = %q", s)
	}
	adm := NewAdmin(NewRegistry())
	if err := adm.Close(); err != nil { // never listened
		t.Fatalf("unlistened Close: %v", err)
	}
}

// brokenWriter fails after limit bytes — a client that disconnected
// mid-scrape, as seen from the handler.
type brokenWriter struct {
	n, limit int
}

func (b *brokenWriter) Write(p []byte) (int, error) {
	if b.n+len(p) > b.limit {
		return 0, fmt.Errorf("connection reset by peer")
	}
	b.n += len(p)
	return len(p), nil
}

func TestStickyWriterStopsAtFirstError(t *testing.T) {
	sw := &stickyWriter{w: &brokenWriter{limit: 4}}
	if _, err := sw.Write([]byte("ok\n")); err != nil {
		t.Fatalf("write under limit failed: %v", err)
	}
	if _, err := sw.Write([]byte("too long")); err == nil {
		t.Fatal("write over limit must surface the error")
	}
	if _, err := sw.Write([]byte("x")); err == nil {
		t.Fatal("writes after a failure must keep failing (sticky)")
	}
	if sw.err == nil {
		t.Fatal("sticky error must remain readable")
	}
}

// TestAdminCountsFailedScrapes is the errdrop regression: a response write
// failure used to disappear — every handler dropped its write error — so a
// dead monitoring pipe was indistinguishable from a healthy one. Now each
// failed scrape increments ScrapeErrors and shows up on /statusz.
func TestAdminCountsFailedScrapes(t *testing.T) {
	r := NewRegistry()
	r.Counter("nebula_x_total").Inc()
	a := NewAdmin(r)
	if got := a.ScrapeErrors(); got != 0 {
		t.Fatalf("fresh admin reports %d scrape errors", got)
	}

	// Drive the handler bodies directly through serveText with a writer that
	// dies mid-response; each failure must be counted exactly once.
	a.serveText(failingResponseWriter{}, "text/plain", func(out io.Writer) error {
		_, err := fmt.Fprintln(out, "ok")
		return err
	})
	if got := a.ScrapeErrors(); got != 1 {
		t.Fatalf("ScrapeErrors = %d after one failed scrape, want 1", got)
	}
	a.serveText(failingResponseWriter{}, "text/plain", func(out io.Writer) error {
		return WritePrometheus(out, a.snapshot())
	})
	a.serveText(failingResponseWriter{}, "text/plain", func(out io.Writer) error {
		a.writeStatus(out)
		return nil
	})
	if got := a.ScrapeErrors(); got != 3 {
		t.Fatalf("ScrapeErrors = %d after three failed scrapes, want 3", got)
	}

	// A healthy scrape does not bump the counter, and /statusz surfaces the
	// accumulated failures.
	var ok strings.Builder
	a.serveText(passthroughResponseWriter{&ok}, "text/plain", func(out io.Writer) error {
		a.writeStatus(out)
		return nil
	})
	if got := a.ScrapeErrors(); got != 3 {
		t.Fatalf("ScrapeErrors = %d after a healthy scrape, want still 3", got)
	}
	if !strings.Contains(ok.String(), "scrape errors: 3") {
		t.Fatalf("/statusz does not surface the scrape-error count:\n%s", ok.String())
	}
}

// failingResponseWriter implements http.ResponseWriter with writes that
// always fail.
type failingResponseWriter struct{}

func (failingResponseWriter) Header() http.Header       { return http.Header{} }
func (failingResponseWriter) WriteHeader(int)           {}
func (failingResponseWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("broken pipe") }

// passthroughResponseWriter adapts a strings.Builder to http.ResponseWriter.
type passthroughResponseWriter struct{ b *strings.Builder }

func (p passthroughResponseWriter) Header() http.Header { return http.Header{} }
func (p passthroughResponseWriter) WriteHeader(int)     {}
func (p passthroughResponseWriter) Write(b []byte) (int, error) {
	return p.b.Write(b)
}

func TestAdminAddHandlerMounts(t *testing.T) {
	a := NewAdmin(NewRegistry())
	a.AddHandler("/spans", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("span data\n"))
	}))
	addr, err := a.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if code, body := adminGet(t, addr, "/spans"); code != 200 || body != "span data\n" {
		t.Fatalf("/spans = %d %q", code, body)
	}
}

func TestHumanize(t *testing.T) {
	cases := []struct {
		name string
		v    float64
		want string
	}{
		{"nebula_bytes_up", 512, "512 B"},
		{"nebula_bytes_up", 2048, "2.00 KiB"},
		{"nebula_traffic_bytes", 3 * 1024 * 1024, "3.00 MiB"},
		{"nebula_phase_seconds", 0, "0 s"},
		{"nebula_phase_seconds", 0.0000005, "0.5 µs"},
		{"nebula_phase_seconds", 0.002, "2.0 ms"},
		{"nebula_phase_seconds", 1.5, "1.50 s"},
		{"nebula_phase_seconds", 600, "10.0 min"},
		{"nebula_round_total", 42, "42"},
	}
	for _, c := range cases {
		if got := humanize(c.name, c.v); got != c.want {
			t.Errorf("humanize(%s, %v) = %q, want %q", c.name, c.v, got, c.want)
		}
	}
}
