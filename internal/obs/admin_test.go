package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func adminGet(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Help("nebula_round_total", "Completed rounds.")
	r.Counter("nebula_round_total").Add(3)
	r.Gauge("nebula_bytes_up").Set(2048)
	r.Histogram("nebula_phase_seconds", []float64{0.1, 1}, "phase", "train").Observe(0.05)

	a := NewAdmin(r)
	a.AddSection("pool", func(w io.Writer) { fmt.Fprintln(w, "workers: 4") })
	addr, err := a.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	if code, body := adminGet(t, addr, "/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body := adminGet(t, addr, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# HELP nebula_round_total Completed rounds.",
		"# TYPE nebula_round_total counter",
		"nebula_round_total 3",
		"nebula_bytes_up 2048",
		`nebula_phase_seconds_bucket{phase="train",le="0.1"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	// Byte-stability at quiescence: two scrapes must be identical.
	_, again := adminGet(t, addr, "/metrics")
	if body != again {
		t.Fatalf("/metrics not byte-stable:\n--- 1 ---\n%s--- 2 ---\n%s", body, again)
	}

	if code, body := adminGet(t, addr, "/metrics.json"); code != 200 || !strings.Contains(body, `"nebula_round_total"`) {
		t.Fatalf("/metrics.json = %d %q", code, body)
	}

	a.SetState("running")
	code, body = adminGet(t, addr, "/statusz")
	if code != 200 {
		t.Fatalf("/statusz = %d", code)
	}
	for _, want := range []string{"state:  running", "nebula_round_total", "2.00 KiB", "== pool ==", "workers: 4"} {
		if !strings.Contains(body, want) {
			t.Errorf("/statusz missing %q in:\n%s", want, body)
		}
	}

	if code, body := adminGet(t, addr, "/debug/pprof/goroutine?debug=1"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof goroutine = %d %q", code, body)
	}

	if code, _ := adminGet(t, addr, "/no-such"); code != 404 {
		t.Fatalf("unknown path = %d, want 404", code)
	}
	if code, body := adminGet(t, addr, "/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index = %d %q", code, body)
	}
}

func TestAdminMergesRegistries(t *testing.T) {
	a := NewRegistry()
	a.Counter("nebula_from_a_total").Inc()
	b := NewRegistry()
	b.Counter("nebula_from_b_total").Inc()
	adm := NewAdmin(a, b)
	addr, err := adm.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	_, body := adminGet(t, addr, "/metrics")
	ia, ib := strings.Index(body, "nebula_from_a_total"), strings.Index(body, "nebula_from_b_total")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("merged exposition wrong:\n%s", body)
	}
}

func TestAdminCloseIsIdempotentAndNilSafe(t *testing.T) {
	var nilAdm *Admin
	if err := nilAdm.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	nilAdm.SetState("x")
	if s := nilAdm.State(); s != "" {
		t.Fatalf("nil State = %q", s)
	}
	adm := NewAdmin(NewRegistry())
	if err := adm.Close(); err != nil { // never listened
		t.Fatalf("unlistened Close: %v", err)
	}
}

func TestHumanize(t *testing.T) {
	cases := []struct {
		name string
		v    float64
		want string
	}{
		{"nebula_bytes_up", 512, "512 B"},
		{"nebula_bytes_up", 2048, "2.00 KiB"},
		{"nebula_traffic_bytes", 3 * 1024 * 1024, "3.00 MiB"},
		{"nebula_phase_seconds", 0, "0 s"},
		{"nebula_phase_seconds", 0.0000005, "0.5 µs"},
		{"nebula_phase_seconds", 0.002, "2.0 ms"},
		{"nebula_phase_seconds", 1.5, "1.50 s"},
		{"nebula_phase_seconds", 600, "10.0 min"},
		{"nebula_round_total", 42, "42"},
	}
	for _, c := range cases {
		if got := humanize(c.name, c.v); got != c.want {
			t.Errorf("humanize(%s, %v) = %q, want %q", c.name, c.v, got, c.want)
		}
	}
}
