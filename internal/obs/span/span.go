// Package span is the causal wall-clock tracing layer (docs/OBSERVABILITY.md
// "Tracing"): Dapper-style spans with TraceID/SpanID/parent links, propagated
// across the edgenet RPC boundary and recorded into a bounded in-memory ring
// — a flight recorder that keeps the most recent spans and counts what it
// evicts, so tracing can stay on in long runs without unbounded growth.
//
// The layer is built around two contracts the rest of the repository already
// enforces for telemetry:
//
//   - Determinism: whether a trace is sampled is a pure keyed-hash function
//     of (sampler seed, key) — the same construction as edgenet.FaultConfig
//     rolls — never a draw from the master RNG and never dependent on
//     goroutine scheduling. Equal-seed runs sample the identical trace set at
//     any -workers value, which is what keeps -seed-audit and the workers
//     1-vs-4 byte gates green with tracing enabled.
//
//   - Artifact neutrality: spans are write-only. Nothing in the round or
//     protocol logic reads recorder state back, so figures, traces, and cost
//     ledgers are byte-identical with tracing on or off (the differential
//     test in internal/fed pins this, like the PR 5 registry on/off gate).
//
// Wall-clock time enters only through the sanctioned obs.Stopwatch gateway;
// span timestamps are offsets from the recorder's epoch, so they never touch
// simulated costs.
//
// The hot path is allocation-free: Start returns a zero Active when the
// recorder is nil or the trace is unsampled (0 allocs/op, pinned by
// AllocsPerRun), and a finished span is copied by value into a preallocated
// ring slot under a short mutex.
package span

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// TraceID identifies one causal tree of spans. IDs are keyed hashes, so the
// same (seed, key) yields the same TraceID in every run — replayed runs
// produce directly comparable trace files.
type TraceID uint64

// SpanID identifies one span within a recorder. IDs are allocated from an
// atomic counter; unlike TraceIDs they are scheduling-dependent, which is
// fine — they only need to be unique, and they never feed artifacts.
type SpanID uint64

// Span is one finished operation. All fields are fixed-size or constant
// strings so recording never allocates; spans cross process boundaries only
// as the TraceID/SpanID pair carried by edgenet requests.
type Span struct {
	Trace  TraceID `json:"trace"`
	ID     SpanID  `json:"id"`
	Parent SpanID  `json:"parent,omitempty"` // 0 = root
	Kind   string  `json:"kind"`
	Start  float64 `json:"start"` // seconds since the recorder epoch
	Dur    float64 `json:"dur"`   // wall-clock seconds (obs.Stopwatch)

	Device  int    `json:"dev,omitempty"`
	Round   int    `json:"round,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Bytes   int64  `json:"bytes,omitempty"`
	Note    string `json:"note,omitempty"`
	Err     string `json:"err,omitempty"`
}

// End returns the span's end offset in seconds since the recorder epoch.
func (s Span) End() float64 { return s.Start + s.Dur }

// Recorder is the flight recorder: a bounded ring of finished spans plus the
// deterministic sampler. A nil *Recorder is a valid "tracing off" recorder —
// every method is nil-safe and free.
type Recorder struct {
	epoch  obs.Stopwatch
	nextID atomic.Uint64

	// Sampler configuration; set once via SetSampler before spans flow.
	seed uint64
	rate float64

	mu      sync.Mutex
	ring    []Span // preallocated; slots are overwritten in place
	next    int    // next write index
	n       int    // filled slots (== len(ring) once wrapped)
	dropped uint64 // spans evicted by the ring wrapping
}

// DefaultCapacity holds roughly a full quick-profile experiment sweep; at
// ~150 B per span the recorder tops out near 5 MiB.
const DefaultCapacity = 1 << 15

// NewRecorder builds a flight recorder holding the most recent capacity
// spans (capacity <= 0 selects DefaultCapacity). The sampler starts fully
// closed; call SetSampler to open it.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{epoch: obs.StartTimer(), ring: make([]Span, capacity)}
}

// SetSampler configures the deterministic keyed-hash sampler: a trace keyed
// k is sampled iff hash(seed, k) maps below rate (0 = none, 1 = all). Call
// before handing the recorder to concurrent producers.
func (r *Recorder) SetSampler(seed int64, rate float64) {
	if r == nil {
		return
	}
	r.seed = uint64(seed)
	r.rate = rate
}

// Trace decides whether the trace keyed by key is sampled, returning its
// deterministic TraceID. The decision is a pure function of (sampler seed,
// key) — no RNG stream, no scheduling dependence — so equal-seed runs agree
// on the sampled set at every worker count (docs/OBSERVABILITY.md "Sampler
// determinism contract").
func (r *Recorder) Trace(key int64) (TraceID, bool) {
	if r == nil || r.rate <= 0 {
		return 0, false
	}
	h := splitmix64(r.seed ^ 0x7370616e) // "span"
	h = splitmix64(h ^ uint64(key))
	if r.rate < 1 && float64(h>>11)/(1<<53) >= r.rate {
		return 0, false
	}
	if h == 0 {
		h = 1 // TraceID 0 means "unsampled" on the wire
	}
	return TraceID(h), true
}

// splitmix64 is the SplitMix64 finalizer (same mix as edgenet's fault rolls).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Active is an in-flight span. The zero value is the rejected/disabled span:
// every method on it is a no-op, which is what makes instrumentation sites
// unconditional — no "if tracing" branches in round or protocol code.
type Active struct {
	rec *Recorder
	sw  obs.Stopwatch
	s   Span
}

// Start opens a span. It returns the zero Active — at zero allocations —
// when the recorder is nil or t is 0 (the trace was not sampled), so callers
// always Start/End unconditionally.
func (r *Recorder) Start(t TraceID, parent SpanID, kind string) Active {
	if r == nil || t == 0 {
		return Active{}
	}
	return Active{
		rec: r,
		sw:  obs.StartTimer(),
		s: Span{
			Trace:  t,
			ID:     SpanID(r.nextID.Add(1)),
			Parent: parent,
			Kind:   kind,
			Start:  r.epoch.Seconds(),
		},
	}
}

// ID returns the span's ID (0 for the zero Active), for parenting children.
func (a *Active) ID() SpanID { return a.s.ID }

// Trace returns the span's trace (0 for the zero Active).
func (a *Active) Trace() TraceID { return a.s.Trace }

// SetDevice attaches the acting device ID.
func (a *Active) SetDevice(id int) { a.s.Device = id }

// SetRound attaches the federated round number.
func (a *Active) SetRound(r int) { a.s.Round = r }

// SetAttempt attaches the retry attempt index.
func (a *Active) SetAttempt(n int) { a.s.Attempt = n }

// SetBytes attaches the payload size the span moved.
func (a *Active) SetBytes(n int64) { a.s.Bytes = n }

// SetNote attaches a short static label (e.g. a churn event name). Pass
// constant strings to keep the hot path allocation-free.
func (a *Active) SetNote(n string) { a.s.Note = n }

// SetErr records the outcome error (nil clears nothing and costs nothing).
func (a *Active) SetErr(err error) {
	if err != nil && a.rec != nil {
		a.s.Err = err.Error()
	}
}

// End finishes the span and pushes it into the flight recorder. Safe to call
// more than once (later calls are no-ops) and on the zero Active.
func (a *Active) End() {
	if a.rec == nil {
		return
	}
	a.s.Dur = a.sw.Seconds()
	a.rec.push(a.s)
	a.rec = nil
}

// push stores one finished span, overwriting the oldest when full. The lock
// covers two integer updates and one struct copy into a preallocated slot —
// cheap enough for worker fan-outs and server handlers to share.
func (r *Recorder) push(s Span) {
	r.mu.Lock()
	if r.n == len(r.ring) {
		r.dropped++
	} else {
		r.n++
	}
	r.ring[r.next] = s
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
	}
	r.mu.Unlock()
}

// Len reports how many spans the recorder currently holds.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped reports how many finished spans the ring has evicted.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Snapshot copies the held spans out in recording (End-time) order, oldest
// first.
func (r *Recorder) Snapshot() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, r.n)
	start := 0
	if r.n == len(r.ring) {
		start = r.next
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.ring[(start+i)%len(r.ring)])
	}
	return out
}

// WriteJSON writes the held spans as JSON lines (one span per line), the
// format cmd/nebula-spans reads.
func (r *Recorder) WriteJSON(w io.Writer) error {
	return WriteJSON(w, r.Snapshot())
}

// WriteJSON writes spans as JSON lines.
func WriteJSON(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return fmt.Errorf("span: encode: %w", err)
		}
	}
	return bw.Flush()
}

// ReadJSON parses a JSONL span stream (the /spans endpoint or a -spans file).
func ReadJSON(rd io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var out []Span
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var s Span
		if err := json.Unmarshal(b, &s); err != nil {
			return nil, fmt.Errorf("span: line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("span: read: %w", err)
	}
	return out, nil
}

// ServeHTTP exposes the flight recorder as JSONL — mounted at /spans on the
// admin server. Serving is read-only over a snapshot, preserving the admin
// plane's artifact-neutrality contract.
func (r *Recorder) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	if r == nil {
		return
	}
	// A mid-scrape client disconnect is the client's problem; there is no
	// useful recovery once the header is sent.
	_ = r.WriteJSON(w) //nolint:errdrop -- best-effort scrape reply; the write error surfaces client-side
}

// ValidateParents checks the structural invariant a complete trace file
// satisfies: every non-root span's parent exists within the same trace.
// (A flight recorder that wrapped may legitimately fail this — size the ring
// to the run, or treat the error as "truncated".)
func ValidateParents(spans []Span) error {
	type key struct {
		t  TraceID
		id SpanID
	}
	have := make(map[key]bool, len(spans))
	for i := range spans {
		have[key{spans[i].Trace, spans[i].ID}] = true
	}
	for i := range spans {
		s := &spans[i]
		if s.Parent == 0 {
			continue
		}
		if !have[key{s.Trace, s.Parent}] {
			return fmt.Errorf("span %d (kind %s, trace %d) references missing parent %d", s.ID, s.Kind, s.Trace, s.Parent)
		}
	}
	return nil
}
