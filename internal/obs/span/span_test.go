package span

import (
	"bytes"
	"errors"
	"net/http/httptest"
	"reflect"
	"testing"
)

func TestSamplerDeterministicAndKeyed(t *testing.T) {
	r := NewRecorder(8)
	r.SetSampler(7, 1)
	id1, ok1 := r.Trace(3)
	id2, ok2 := r.Trace(3)
	if !ok1 || !ok2 || id1 != id2 || id1 == 0 {
		t.Fatalf("same key must sample identically: (%d,%v) vs (%d,%v)", id1, ok1, id2, ok2)
	}
	if other, _ := r.Trace(4); other == id1 {
		t.Fatal("different keys should yield different trace IDs")
	}
	r2 := NewRecorder(8)
	r2.SetSampler(7, 1)
	if id, _ := r2.Trace(3); id != id1 {
		t.Fatal("trace IDs must be a pure function of (seed, key), not recorder identity")
	}
}

func TestSamplerRateEndpoints(t *testing.T) {
	r := NewRecorder(8)
	r.SetSampler(1, 0)
	for k := int64(0); k < 100; k++ {
		if _, ok := r.Trace(k); ok {
			t.Fatalf("rate 0 sampled key %d", k)
		}
	}
	r.SetSampler(1, 1)
	for k := int64(0); k < 100; k++ {
		if _, ok := r.Trace(k); !ok {
			t.Fatalf("rate 1 rejected key %d", k)
		}
	}
	// A fractional rate accepts roughly that fraction (the hash is uniform).
	r.SetSampler(5, 0.5)
	hits := 0
	for k := int64(0); k < 1000; k++ {
		if _, ok := r.Trace(k); ok {
			hits++
		}
	}
	if hits < 400 || hits > 600 {
		t.Fatalf("rate 0.5 sampled %d/1000 keys", hits)
	}
}

func TestNilRecorderIsOff(t *testing.T) {
	var r *Recorder
	if id, ok := r.Trace(1); ok || id != 0 {
		t.Fatal("nil recorder must not sample")
	}
	a := r.Start(1, 0, "x")
	a.SetDevice(3)
	a.SetErr(errors.New("boom"))
	a.End()
	a.End() // double End is a no-op
	if r.Len() != 0 || r.Dropped() != 0 || r.Snapshot() != nil {
		t.Fatal("nil recorder must stay empty")
	}
}

func TestFlightRecorderEvictsOldest(t *testing.T) {
	r := NewRecorder(4)
	r.SetSampler(1, 1)
	tid, _ := r.Trace(1)
	for i := 0; i < 6; i++ {
		a := r.Start(tid, 0, "op")
		a.SetDevice(i)
		a.End()
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := r.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot holds %d spans, want 4", len(snap))
	}
	for i, s := range snap {
		if s.Device != i+2 {
			t.Fatalf("snapshot[%d].Device = %d, want %d (oldest-first, oldest two evicted)", i, s.Device, i+2)
		}
	}
}

func TestStartRejectPathIsAllocFree(t *testing.T) {
	rec := NewRecorder(16)
	rec.SetSampler(1, 0) // sampler closed: every Trace rejects
	if allocs := testing.AllocsPerRun(200, func() {
		tid, _ := rec.Trace(9)
		a := rec.Start(tid, 0, "rpc.call")
		a.SetDevice(4)
		a.SetBytes(128)
		a.End()
	}); allocs != 0 {
		t.Fatalf("sampling-reject hot path allocates (%v allocs/op), want 0", allocs)
	}
	var nilRec *Recorder
	if allocs := testing.AllocsPerRun(200, func() {
		a := nilRec.Start(1, 0, "rpc.call")
		a.End()
	}); allocs != 0 {
		t.Fatalf("nil-recorder hot path allocates (%v allocs/op), want 0", allocs)
	}
}

func TestRecordPathIsAllocFree(t *testing.T) {
	rec := NewRecorder(64)
	rec.SetSampler(1, 1)
	tid, _ := rec.Trace(2)
	if allocs := testing.AllocsPerRun(200, func() {
		a := rec.Start(tid, 0, "rpc.call")
		a.SetRound(3)
		a.End()
	}); allocs != 0 {
		t.Fatalf("sampled record path allocates (%v allocs/op), want 0 (ring slots are preallocated)", allocs)
	}
}

func TestJSONRoundTripAndHTTP(t *testing.T) {
	r := NewRecorder(16)
	r.SetSampler(3, 1)
	tid, _ := r.Trace(1)
	root := r.Start(tid, 0, "fed.round")
	root.SetRound(1)
	child := r.Start(tid, root.ID(), "fed.device")
	child.SetDevice(5)
	child.SetErr(errors.New("push lost"))
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r.Snapshot()) {
		t.Fatalf("JSONL round trip diverged:\n got %+v\nwant %+v", got, r.Snapshot())
	}
	if err := ValidateParents(got); err != nil {
		t.Fatalf("well-formed trace failed validation: %v", err)
	}

	rr := httptest.NewRecorder()
	r.ServeHTTP(rr, httptest.NewRequest("GET", "/spans", nil))
	scraped, err := ReadJSON(rr.Body)
	if err != nil {
		t.Fatalf("/spans scrape did not parse: %v", err)
	}
	if len(scraped) != 2 {
		t.Fatalf("/spans served %d spans, want 2", len(scraped))
	}
}

func TestValidateParentsCatchesOrphans(t *testing.T) {
	spans := []Span{
		{Trace: 1, ID: 1, Kind: "root"},
		{Trace: 1, ID: 2, Parent: 1, Kind: "child"},
		{Trace: 1, ID: 3, Parent: 99, Kind: "orphan"},
	}
	if err := ValidateParents(spans); err == nil {
		t.Fatal("orphaned parent reference must fail validation")
	}
	if err := ValidateParents(spans[:2]); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	// Same span ID under a different trace must not satisfy the parent link.
	cross := []Span{
		{Trace: 1, ID: 7, Kind: "root"},
		{Trace: 2, ID: 8, Parent: 7, Kind: "child"},
	}
	if err := ValidateParents(cross); err == nil {
		t.Fatal("parent in a different trace must not count")
	}
}

func TestSpanEndOffset(t *testing.T) {
	s := Span{Start: 1.5, Dur: 0.25}
	if s.End() != 1.75 {
		t.Fatalf("End = %v, want 1.75", s.End())
	}
}
