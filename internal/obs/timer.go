package obs

import "time"

// Stopwatch is the sanctioned way to measure wall-clock time outside this
// package. nebula-lint's rawclock check bans direct time.Now / time.Since
// in simulation code — wall clock leaking into simulated costs is the bug
// class that breaks `-seed-audit` — so instrumented code starts a
// Stopwatch and feeds the elapsed seconds into a Histogram (or discards
// it). A Stopwatch value never influences control flow in the packages
// that use it; it exists purely to be observed.
type Stopwatch struct{ t0 time.Time }

// StartTimer begins a wall-clock measurement.
func StartTimer() Stopwatch { return Stopwatch{t0: time.Now()} }

// Seconds returns the wall-clock seconds elapsed since StartTimer.
func (s Stopwatch) Seconds() float64 { return time.Since(s.t0).Seconds() }

// Elapsed returns the elapsed wall-clock time as a duration (for progress
// lines on stderr, e.g. nebula-sim -v).
func (s Stopwatch) Elapsed() time.Duration { return time.Since(s.t0) }
