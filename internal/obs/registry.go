// Package obs is the runtime telemetry plane: a stdlib-only metrics
// registry (counters, gauges, fixed-bucket histograms, all with label
// support), deterministic Prometheus-text and JSON exposition, and an
// opt-in admin HTTP server mounting /metrics, /healthz, /statusz, and
// net/http/pprof.
//
// Two contracts shape the design (docs/OBSERVABILITY.md):
//
//   - Hot paths are lock-cheap and allocation-free. Handles are created
//     once (under the registry lock) and held by the instrumented code;
//     Counter.Add, Gauge.Set, and Histogram.Observe are pure atomics with
//     zero steady-state allocations (pinned by TestHotPathAllocs).
//
//   - Observability is artifact-neutral. Metrics never feed back into
//     simulation logic, exposition carries no timestamps, and iteration
//     order is canonical (families sorted by name, children by label set),
//     so a scrape is a pure function of the counters' values. The
//     registry-on-vs-off differential test in internal/fed proves the
//     experiment artifacts are byte-identical either way.
//
// obs is a leaf package: it imports only the standard library, so every
// layer (tensor, edgenet, fed, cmd/*) can instrument against it without
// import cycles. It is also, together with internal/trace, the only place
// allowed to read the wall clock — nebula-lint's rawclock check keeps
// time.Now out of simulation code; callers that need wall-time measurement
// use Stopwatch.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType discriminates the three instrument kinds.
type MetricType string

// The metric kinds a Registry can hold.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Registry holds metric families keyed by name. The zero value is not
// usable; construct with NewRegistry. A nil *Registry is safe: every
// constructor returns a nil handle whose operations no-op, so optional
// instrumentation never needs nil checks at call sites.
type Registry struct {
	mu sync.Mutex
	// enabled gates every handle created from this registry. Handles keep a
	// pointer to it, so SetEnabled(false) silences the hot paths process-wide
	// without touching the instrumented code.
	enabled  atomic.Bool
	families map[string]*family
}

// family is one named metric with its children (one per label set).
type family struct {
	name   string
	typ    MetricType
	help   string
	bounds []float64 // histogram bucket upper bounds (nil otherwise)
	// children maps the canonical label string (`k="v",k2="v2"`, keys
	// sorted) to the handle. Creation is idempotent: asking for the same
	// name+labels returns the existing handle.
	children map[string]any
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	r := &Registry{families: map[string]*family{}}
	r.enabled.Store(true)
	return r
}

// defaultRegistry is the process-wide registry package-level
// instrumentation (tensor kernels, edgenet clients, fed rounds) binds to.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// SetEnabled turns every handle of this registry on or off. Disabled
// handles no-op at the cost of one atomic load, so instrumentation can stay
// wired permanently.
func (r *Registry) SetEnabled(v bool) {
	if r != nil {
		r.enabled.Store(v)
	}
}

// Enabled reports whether the registry is collecting.
func (r *Registry) Enabled() bool { return r != nil && r.enabled.Load() }

// Help attaches (or replaces) the help text of a family, creating nothing:
// unknown names are remembered and applied when the family appears.
func (r *Registry) Help(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		f.help = text
		return
	}
	r.families[name] = &family{name: name, help: text, children: map[string]any{}}
}

// Counter returns the counter for name and the given label pairs
// ("key", "value", ...), creating it on first use. Counters only go up;
// negative deltas are a programming error the registry does not police on
// the hot path.
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	if r == nil {
		return nil
	}
	f, key := r.family(name, TypeCounter, nil, labelPairs)
	defer r.mu.Unlock()
	if h, ok := f.children[key]; ok {
		return h.(*Counter)
	}
	c := &Counter{on: &r.enabled}
	f.children[key] = c
	return c
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	if r == nil {
		return nil
	}
	f, key := r.family(name, TypeGauge, nil, labelPairs)
	defer r.mu.Unlock()
	if h, ok := f.children[key]; ok {
		return h.(*Gauge)
	}
	g := &Gauge{on: &r.enabled}
	f.children[key] = g
	return g
}

// Histogram returns the fixed-bucket histogram for name+labels, creating
// it on first use. bounds are inclusive upper bounds in strictly increasing
// order; an implicit +Inf bucket is always appended. All children of one
// family share the first creation's bounds.
func (r *Registry) Histogram(name string, bounds []float64, labelPairs ...string) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing: %v", name, bounds))
		}
	}
	f, key := r.family(name, TypeHistogram, bounds, labelPairs)
	defer r.mu.Unlock()
	if h, ok := f.children[key]; ok {
		return h.(*Histogram)
	}
	h := &Histogram{on: &r.enabled, bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds)+1)}
	f.children[key] = h
	return h
}

// family finds or creates the named family, validating type consistency.
// It returns with r.mu HELD; the caller must unlock.
func (r *Registry) family(name string, typ MetricType, bounds []float64, labelPairs []string) (*family, string) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	key := canonLabels(labelPairs)
	r.mu.Lock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, typ: typ, bounds: append([]float64(nil), bounds...), children: map[string]any{}}
		r.families[name] = f
		return f, key
	}
	if f.typ == "" { // placeholder created by Help
		f.typ = typ
		f.bounds = append([]float64(nil), bounds...)
		return f, key
	}
	if f.typ != typ {
		r.mu.Unlock()
		panic(fmt.Sprintf("obs: metric %q redeclared as %s (was %s)", name, typ, f.typ))
	}
	return f, key
}

// validName enforces the Prometheus metric/label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// canonLabels renders ("k","v",...) pairs as the canonical sorted
// `k="v",k2="v2"` string used both as the child key and in exposition.
func canonLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", pairs))
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		if !validName(pairs[i]) {
			panic(fmt.Sprintf("obs: invalid label name %q", pairs[i]))
		}
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	for i := 1; i < len(kvs); i++ {
		if kvs[i].k == kvs[i-1].k {
			panic(fmt.Sprintf("obs: duplicate label %q", kvs[i].k))
		}
	}
	var b strings.Builder
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel applies the Prometheus text-format label escaping.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// --- handles --------------------------------------------------------------

// Counter is a monotonically increasing float64. The nil handle (from a nil
// registry) and a disabled registry both make Add a no-op.
type Counter struct {
	bits atomic.Uint64 // float64 bits
	on   *atomic.Bool
}

// Add increments the counter. Exact for integer-valued deltas below 2^53.
func (c *Counter) Add(v float64) {
	if c == nil || !c.on.Load() {
		return
	}
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total (0 for a nil handle).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is an arbitrary float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
	on   *atomic.Bool
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil || !g.on.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by v (negative to decrement).
func (g *Gauge) Add(v float64) {
	if g == nil || !g.on.Load() {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current value (0 for a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Buckets are inclusive
// upper bounds plus an implicit +Inf; Observe is a binary search and two
// atomic updates — no locks, no allocations.
type Histogram struct {
	on     *atomic.Bool
	bounds []float64
	counts []atomic.Uint64 // one per bound, plus the +Inf overflow
	sum    atomic.Uint64   // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || !h.on.Load() {
		return
	}
	// First bucket whose upper bound is >= v (le semantics).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the wall-clock seconds elapsed on a Stopwatch —
// the one sanctioned way simulation code measures wall time (see
// Stopwatch and nebula-lint's rawclock check).
func (h *Histogram) ObserveSince(sw Stopwatch) { h.Observe(sw.Seconds()) }

// Count returns the number of observations (0 for a nil handle).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values (0 for a nil handle).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// --- bucket helpers -------------------------------------------------------

// DefBuckets are general-purpose latency buckets in seconds.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// SizeBuckets are payload-size buckets in bytes (256 B … 64 MiB).
var SizeBuckets = ExpBuckets(256, 4, 10)

// ExpBuckets returns n exponentially growing bounds: start, start·factor, …
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic("obs: ExpBuckets needs n>0, start>0, factor>1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n bounds: start, start+width, …
func LinearBuckets(start, width float64, n int) []float64 {
	if n <= 0 || width <= 0 {
		panic("obs: LinearBuckets needs n>0, width>0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}
