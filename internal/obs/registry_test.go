package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("nebula_test_total")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter value = %v, want 3.5", got)
	}
	if again := r.Counter("nebula_test_total"); again != c {
		t.Fatalf("same name+labels returned a different handle")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("nebula_test_gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge value = %v, want 5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("nebula_test_hist", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	if got := h.Sum(); got != 108 {
		t.Fatalf("sum = %v, want 108", got)
	}
	// le semantics: bucket bounds are inclusive upper bounds.
	want := []uint64{2, 4, 5, 6} // cumulative: le=1, le=2, le=4, +Inf
	snap := r.Snapshot()
	if len(snap) != 1 || len(snap[0].Points) != 1 {
		t.Fatalf("snapshot shape: %+v", snap)
	}
	p := snap[0].Points[0]
	if len(p.Buckets) != 4 {
		t.Fatalf("bucket count = %d, want 4", len(p.Buckets))
	}
	for i, b := range p.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket[%d] (le=%v) = %d, want %d", i, b.UpperBound, b.Count, want[i])
		}
	}
	if !math.IsInf(p.Buckets[3].UpperBound, 1) {
		t.Errorf("last bucket bound = %v, want +Inf", p.Buckets[3].UpperBound)
	}
	if p.Count != 6 || p.Sum != 108 {
		t.Errorf("point count/sum = %d/%v, want 6/108", p.Count, p.Sum)
	}
}

func TestLabelCanonicalization(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("nebula_test_total", "zeta", "1", "alpha", "2")
	b := r.Counter("nebula_test_total", "alpha", "2", "zeta", "1")
	if a != b {
		t.Fatalf("label order should not matter for handle identity")
	}
	a.Inc()
	snap := r.Snapshot()
	if got := snap[0].Points[0].Labels; got != `alpha="2",zeta="1"` {
		t.Fatalf("canonical labels = %q", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("nebula_test_total", "k", "a\"b\\c\nd").Inc()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `k="a\"b\\c\nd"`) {
		t.Fatalf("escaping missing in %q", buf.String())
	}
}

func TestInvalidUsagePanics(t *testing.T) {
	r := NewRegistry()
	for name, fn := range map[string]func(){
		"bad metric name":  func() { r.Counter("bad-name") },
		"odd labels":       func() { r.Counter("nebula_ok_total", "only_key") },
		"dup labels":       func() { r.Counter("nebula_ok_total", "k", "1", "k", "2") },
		"bad label name":   func() { r.Counter("nebula_ok_total", "bad-key", "v") },
		"type redeclare":   func() { r.Counter("nebula_mixed"); r.Gauge("nebula_mixed") },
		"unsorted bounds":  func() { r.Histogram("nebula_h", []float64{2, 1}) },
		"duplicate bounds": func() { r.Histogram("nebula_h2", []float64{1, 1}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.SetEnabled(true)
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	r.Help("x", "y")
	c := r.Counter("nebula_test_total")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := r.Gauge("nebula_test_gauge")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge accumulated")
	}
	h := r.Histogram("nebula_test_hist", DefBuckets)
	h.Observe(1)
	h.ObserveSince(StartTimer())
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram accumulated")
	}
	if snap := r.Snapshot(); snap != nil {
		t.Fatalf("nil registry snapshot = %v", snap)
	}
}

func TestSetEnabledSilencesHandles(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("nebula_test_total")
	h := r.Histogram("nebula_test_hist", []float64{1})
	g := r.Gauge("nebula_test_gauge")
	r.SetEnabled(false)
	c.Inc()
	g.Set(5)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("disabled registry still accumulated")
	}
	r.SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("re-enabled counter did not accumulate")
	}
}

func TestHelpPlaceholderAndAttachment(t *testing.T) {
	r := NewRegistry()
	r.Help("nebula_later_total", "help set before creation")
	// Placeholder alone must not appear in exposition.
	if snap := r.Snapshot(); len(snap) != 0 {
		t.Fatalf("placeholder leaked into snapshot: %+v", snap)
	}
	r.Counter("nebula_later_total").Inc()
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Help != "help set before creation" {
		t.Fatalf("help not attached: %+v", snap)
	}
}

// TestDeterministicExposition is the core determinism pin: creation order
// must not affect output, and two renders are byte-identical.
func TestDeterministicExposition(t *testing.T) {
	build := func(order []int) string {
		r := NewRegistry()
		ops := []func(){
			func() { r.Counter("nebula_c_total", "dev", "2").Add(5) },
			func() { r.Counter("nebula_c_total", "dev", "1").Add(3) },
			func() { r.Gauge("nebula_b_gauge").Set(1.5) },
			func() { r.Histogram("nebula_a_seconds", []float64{0.1, 1}, "phase", "train").Observe(0.5) },
		}
		for _, i := range order {
			ops[i]()
		}
		var buf bytes.Buffer
		if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := build([]int{0, 1, 2, 3})
	b := build([]int{3, 2, 1, 0})
	if a != b {
		t.Fatalf("exposition depends on creation order:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	// Families sorted by name; children sorted by labels.
	wantOrder := []string{"nebula_a_seconds", "nebula_b_gauge", "nebula_c_total"}
	var pos []int
	for _, n := range wantOrder {
		pos = append(pos, strings.Index(a, "# TYPE "+n))
	}
	if !(pos[0] >= 0 && pos[0] < pos[1] && pos[1] < pos[2]) {
		t.Fatalf("families not sorted by name in:\n%s", a)
	}
	if strings.Index(a, `dev="1"`) > strings.Index(a, `dev="2"`) {
		t.Fatalf("children not sorted by labels in:\n%s", a)
	}
	if strings.Contains(a, " 1.5e") {
		t.Fatalf("unexpected exponent formatting: %s", a)
	}
}

func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Help("nebula_req_total", "Requests served.")
	r.Counter("nebula_req_total", "kind", "fetch").Add(3)
	r.Histogram("nebula_lat_seconds", []float64{0.5, 1}).Observe(0.25)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE nebula_lat_seconds histogram
nebula_lat_seconds_bucket{le="0.5"} 1
nebula_lat_seconds_bucket{le="1"} 1
nebula_lat_seconds_bucket{le="+Inf"} 1
nebula_lat_seconds_sum 0.25
nebula_lat_seconds_count 1
# HELP nebula_req_total Requests served.
# TYPE nebula_req_total counter
nebula_req_total{kind="fetch"} 3
`
	if buf.String() != want {
		t.Fatalf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("nebula_req_total").Add(2)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"name": "nebula_req_total"`) || !strings.Contains(s, `"value": 2`) {
		t.Fatalf("json missing fields: %s", s)
	}
	buf.Reset()
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("nil snapshot json = %q, want []", buf.String())
	}
}

func TestMergeSnapshots(t *testing.T) {
	a := NewRegistry()
	a.Counter("nebula_shared_total", "src", "a").Add(1)
	a.Counter("nebula_only_a_total").Add(2)
	b := NewRegistry()
	b.Counter("nebula_shared_total", "src", "b").Add(3)
	merged := MergeSnapshots(a.Snapshot(), b.Snapshot())
	if got := SortedNames(merged); strings.Join(got, ",") != "nebula_only_a_total,nebula_shared_total" {
		t.Fatalf("merged names = %v", got)
	}
	for _, f := range merged {
		if f.Name == "nebula_shared_total" {
			if len(f.Points) != 2 || f.Points[0].Labels != `src="a"` || f.Points[1].Labels != `src="b"` {
				t.Fatalf("shared family points = %+v", f.Points)
			}
		}
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(256, 4, 3)
	if exp[0] != 256 || exp[1] != 1024 || exp[2] != 4096 {
		t.Fatalf("ExpBuckets = %v", exp)
	}
	lin := LinearBuckets(1, 2, 3)
	if lin[0] != 1 || lin[1] != 3 || lin[2] != 5 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
}

// TestHotPathAllocs pins the acceptance criterion: counter, gauge, and
// histogram updates allocate nothing in steady state.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("nebula_alloc_total", "kind", "x")
	g := r.Gauge("nebula_alloc_gauge")
	h := r.Histogram("nebula_alloc_seconds", DefBuckets)
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Errorf("Counter.Add allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(3) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.01) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v per op", n)
	}
}

// TestConcurrentUpdates exercises the atomic hot paths under the race
// detector and checks the totals are exact.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("nebula_conc_total")
	h := r.Histogram("nebula_conc_hist", []float64{10})
	g := r.Gauge("nebula_conc_gauge")
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(1)
				// Concurrent snapshots must be safe too.
				if i%500 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %v, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Errorf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestFmtVal(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		3:       "3",
		-7:      "-7",
		2.5:     "2.5",
		1e20:    "1e+20",
		0.0005:  "0.0005",
		1048576: "1048576",
	}
	for in, want := range cases {
		if got := fmtVal(in); got != want {
			t.Errorf("fmtVal(%v) = %q, want %q", in, got, want)
		}
	}
}
