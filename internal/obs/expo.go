package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// This file is the exposition side of the registry: an immutable Snapshot
// of every family, rendered as Prometheus text or JSON. Both renderings are
// canonical — families sorted by name, children sorted by label string, no
// timestamps, shortest-roundtrip float formatting — so two scrapes of a
// quiescent registry are byte-identical (the ci.sh admin gate holds the
// repo to that), and a replayed trace renders the same bytes as the live
// endpoint it mirrors.

// Bucket is one cumulative histogram bucket: the count of observations
// less than or equal to UpperBound.
type Bucket struct {
	UpperBound float64 `json:"-"`
	Count      uint64  `json:"count"`
}

// MarshalJSON renders the bound as the same string the text exposition
// uses for the le label — +Inf is not representable as a JSON number.
func (b Bucket) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Le    string `json:"le"`
		Count uint64 `json:"count"`
	}{Le: fmtLe(b.UpperBound), Count: b.Count})
}

// Point is one child of a family: a label set plus its value(s).
type Point struct {
	Labels string `json:"labels,omitempty"` // canonical `k="v",...` form
	// Counter/gauge value.
	Value float64 `json:"value"`
	// Histogram-only fields.
	Buckets []Bucket `json:"buckets,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Count   uint64   `json:"count,omitempty"`
}

// Family is one metric with all its children.
type Family struct {
	Name   string     `json:"name"`
	Type   MetricType `json:"type"`
	Help   string     `json:"help,omitempty"`
	Points []Point    `json:"points"`
}

// Snapshot captures every family in canonical order. Values are read with
// atomic loads; a snapshot taken while writers are active is a consistent
// per-metric (not cross-metric) view, and at quiescence it is exact.
func (r *Registry) Snapshot() []Family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Family, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		if f.typ == "" && len(f.children) == 0 {
			continue // Help-only placeholder, never instantiated
		}
		fam := Family{Name: f.name, Type: f.typ, Help: f.help}
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			switch h := f.children[k].(type) {
			case *Counter:
				fam.Points = append(fam.Points, Point{Labels: k, Value: h.Value()})
			case *Gauge:
				fam.Points = append(fam.Points, Point{Labels: k, Value: h.Value()})
			case *Histogram:
				p := Point{Labels: k, Sum: h.Sum()}
				var cum uint64
				for i := range h.counts {
					cum += h.counts[i].Load()
					ub := math.Inf(1)
					if i < len(h.bounds) {
						ub = h.bounds[i]
					}
					p.Buckets = append(p.Buckets, Bucket{UpperBound: ub, Count: cum})
				}
				p.Count = cum
				fam.Points = append(fam.Points, p)
			}
		}
		out = append(out, fam)
	}
	return out
}

// MergeSnapshots combines several snapshots into one canonical snapshot:
// same-named families concatenate their points (re-sorted by labels), and
// the merged family list is re-sorted by name. Used by the admin server
// when a process exposes more than one registry (e.g. nebula-cloud's
// per-server registry plus the process Default).
func MergeSnapshots(snaps ...[]Family) []Family {
	byName := map[string]*Family{}
	var order []string
	for _, snap := range snaps {
		for _, f := range snap {
			g, ok := byName[f.Name]
			if !ok {
				cp := f
				cp.Points = append([]Point(nil), f.Points...)
				byName[f.Name] = &cp
				order = append(order, f.Name)
				continue
			}
			g.Points = append(g.Points, f.Points...)
			if g.Help == "" {
				g.Help = f.Help
			}
		}
	}
	sort.Strings(order)
	out := make([]Family, 0, len(order))
	for _, name := range order {
		f := byName[name]
		sort.Slice(f.Points, func(i, j int) bool { return f.Points[i].Labels < f.Points[j].Labels })
		out = append(out, *f)
	}
	return out
}

// fmtVal renders a sample value deterministically: integers (the common
// case for counters) without an exponent or trailing zeros, everything
// else with strconv's shortest round-trip form.
func fmtVal(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// fmtLe renders a bucket bound for the le label.
func fmtLe(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmtVal(v)
}

// WritePrometheus renders families in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers, one line per sample,
// histograms expanded into cumulative _bucket/_sum/_count series. Output
// is a pure function of the snapshot — no timestamps.
func WritePrometheus(w io.Writer, fams []Family) error {
	for _, f := range fams {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, f.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		for _, p := range f.Points {
			if f.Type != TypeHistogram {
				if err := writeSample(w, f.Name, p.Labels, fmtVal(p.Value)); err != nil {
					return err
				}
				continue
			}
			for _, b := range p.Buckets {
				le := `le="` + fmtLe(b.UpperBound) + `"`
				if err := writeSample(w, f.Name+"_bucket", joinLabels(p.Labels, le), strconv.FormatUint(b.Count, 10)); err != nil {
					return err
				}
			}
			if err := writeSample(w, f.Name+"_sum", p.Labels, fmtVal(p.Sum)); err != nil {
				return err
			}
			if err := writeSample(w, f.Name+"_count", p.Labels, strconv.FormatUint(p.Count, 10)); err != nil {
				return err
			}
		}
	}
	return nil
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func writeSample(w io.Writer, name, labels, val string) error {
	var err error
	if labels == "" {
		_, err = fmt.Fprintf(w, "%s %s\n", name, val)
	} else {
		_, err = fmt.Fprintf(w, "%s{%s} %s\n", name, labels, val)
	}
	return err
}

// WriteJSON renders families as one indented JSON document (an array of
// Family objects, in the same canonical order as the text form).
func WriteJSON(w io.Writer, fams []Family) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if fams == nil {
		fams = []Family{}
	}
	return enc.Encode(fams)
}
