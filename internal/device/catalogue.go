// Package device simulates heterogeneous edge hardware: a catalogue of
// device classes with compute/memory/bandwidth envelopes (standing in for
// the paper's AI-Benchmark statistics and Jetson Nano / Raspberry Pi
// testbed), a co-running-process contention model, and a runtime monitor
// that produces the time-varying resource profiles the online adaptation
// stage consumes.
package device

import (
	"repro/internal/tensor"
)

// Class describes one hardware tier.
type Class struct {
	Name string
	// ComputeFLOPS is sustained single-precision throughput available to the
	// learning workload (not peak silicon).
	ComputeFLOPS float64
	// MemoryBytes is RAM available to the workload.
	MemoryBytes int64
	// BandwidthBps is uplink/downlink network bandwidth in bits per second.
	BandwidthBps float64
	// Mobile marks phone-class SoCs (for the Fig 2 mobile-vs-IoT split).
	Mobile bool
	// Weight is the sampling weight in the fleet population.
	Weight float64
}

// Catalogue is the device population model. Figures 2(a)/(b) of the paper
// plot RAM capacity and MobileNet inference-latency distributions from AI
// Benchmark; these tiers are chosen to reproduce those distributions' shape:
// RAM mass between 2–8 GB, latency spread over three orders of magnitude
// between flagship SoCs and IoT boards.
var Catalogue = []Class{
	{Name: "flagship-soc", ComputeFLOPS: 1.2e12, MemoryBytes: 12 << 30, BandwidthBps: 200e6, Mobile: true, Weight: 0.08},
	{Name: "high-soc", ComputeFLOPS: 6e11, MemoryBytes: 8 << 30, BandwidthBps: 120e6, Mobile: true, Weight: 0.17},
	{Name: "mid-soc", ComputeFLOPS: 2.5e11, MemoryBytes: 6 << 30, BandwidthBps: 80e6, Mobile: true, Weight: 0.30},
	{Name: "entry-soc", ComputeFLOPS: 8e10, MemoryBytes: 4 << 30, BandwidthBps: 40e6, Mobile: true, Weight: 0.20},
	{Name: "low-soc", ComputeFLOPS: 3e10, MemoryBytes: 2 << 30, BandwidthBps: 20e6, Mobile: true, Weight: 0.10},
	{Name: "jetson-nano", ComputeFLOPS: 2.3e11, MemoryBytes: 4 << 30, BandwidthBps: 50e6, Mobile: false, Weight: 0.08},
	{Name: "raspberry-pi-4b", ComputeFLOPS: 1.35e10, MemoryBytes: 2 << 30, BandwidthBps: 40e6, Mobile: false, Weight: 0.07},
}

// ClassByName returns the catalogue entry with the given name.
func ClassByName(name string) Class {
	for _, c := range Catalogue {
		if c.Name == name {
			return c
		}
	}
	panic("device: unknown class " + name)
}

// SampleClass draws a device class according to the population weights.
func SampleClass(rng *tensor.RNG) Class {
	w := make([]float64, len(Catalogue))
	for i, c := range Catalogue {
		w[i] = c.Weight
	}
	return Catalogue[rng.Categorical(w)]
}

// JetsonNano and RaspberryPi are the two testbed tiers the paper deploys on.
func JetsonNano() Class  { return ClassByName("jetson-nano") }
func RaspberryPi() Class { return ClassByName("raspberry-pi-4b") }
