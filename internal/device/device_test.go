package device

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestCatalogueWeightsAndLookup(t *testing.T) {
	var sum float64
	for _, c := range Catalogue {
		if c.ComputeFLOPS <= 0 || c.MemoryBytes <= 0 || c.BandwidthBps <= 0 {
			t.Fatalf("invalid class %+v", c)
		}
		sum += c.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("catalogue weights sum to %v", sum)
	}
	if ClassByName("jetson-nano").Name != "jetson-nano" {
		t.Fatal("lookup failed")
	}
	if JetsonNano().ComputeFLOPS <= RaspberryPi().ComputeFLOPS {
		t.Fatal("Nano should be faster than Pi")
	}
}

func TestClassByNameUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ClassByName("does-not-exist")
}

func TestSampleClassFollowsWeights(t *testing.T) {
	rng := tensor.NewRNG(1)
	counts := map[string]int{}
	for i := 0; i < 5000; i++ {
		counts[SampleClass(rng).Name]++
	}
	if counts["mid-soc"] < counts["flagship-soc"] {
		t.Fatal("mid-soc should be more common than flagship")
	}
	if counts["raspberry-pi-4b"] == 0 {
		t.Fatal("all classes should be sampled")
	}
}

func TestContentionFactorCalibration(t *testing.T) {
	if ContentionFactor(0) != 1 {
		t.Fatal("no contention must be 1×")
	}
	// The paper measures 5.06× with 3 background processes (Fig 1b).
	f3 := ContentionFactor(3)
	if math.Abs(f3-5.06) > 0.02 {
		t.Fatalf("ContentionFactor(3) = %v, want ≈5.06", f3)
	}
	for n := 1; n < 5; n++ {
		if ContentionFactor(n) <= ContentionFactor(n-1) {
			t.Fatal("contention must be monotone")
		}
	}
}

func TestProfileLatencyAndTransfer(t *testing.T) {
	p := Profile{ComputeFLOPS: 1e9, MemoryBytes: 1 << 30, BandwidthBps: 8e6}
	if got := p.InferenceLatency(2e6); math.Abs(got-0.002) > 1e-12 {
		t.Fatalf("InferenceLatency = %v", got)
	}
	if got := p.TrainBatchLatency(1e6, 10); math.Abs(got-0.03) > 1e-12 {
		t.Fatalf("TrainBatchLatency = %v", got)
	}
	// 1 MB over 8 Mbit/s = 1 second.
	if got := p.TransferTime(1 << 20); math.Abs(got-1.048576) > 1e-6 {
		t.Fatalf("TransferTime = %v", got)
	}
}

func TestTrainMemoryAccounting(t *testing.T) {
	rng := tensor.NewRNG(2)
	model := nn.NewMLP(rng, 64, []int{128, 128}, 6, 1.0)
	_, memEl := nn.TrainCost(model, 64)
	small := Profile{MemoryBytes: 1 << 30}
	if !small.FitsMemory(memEl, 16) {
		t.Fatal("small MLP must fit 1 GB")
	}
	tiny := Profile{MemoryBytes: 32 << 20}
	if tiny.FitsMemory(memEl, 16) {
		t.Fatal("nothing fits below framework overhead")
	}
	if TrainMemoryBytes(memEl, 16) <= TrainMemoryBytes(memEl, 1) {
		t.Fatal("memory must grow with batch size")
	}
}

func TestTrainingCostsMoreThanInference(t *testing.T) {
	// Reproduces the Fig 2(c) qualitative claim: training needs multiples of
	// inference memory and time.
	rng := tensor.NewRNG(3)
	model := nn.NewVGGLike(rng, 3, 16, []int{16, 32}, 10, 1.0)
	cost := CostOf(model, 3*16*16)
	if cost.TrainFLOPs != 3*cost.FwdFLOPs {
		t.Fatalf("train FLOPs %d vs fwd %d", cost.TrainFLOPs, cost.FwdFLOPs)
	}
	inferMem := InferenceMemoryBytes(model, 3*16*16)
	trainMem := TrainMemoryBytes(cost.TrainMemEl, 16)
	if trainMem < 2*inferMem {
		t.Fatalf("training memory %d should dwarf inference %d", trainMem, inferMem)
	}
	if cost.Bytes != int64(cost.Params)*4 {
		t.Fatal("wire bytes must be 4 per param")
	}
}

func TestMonitorStepBounded(t *testing.T) {
	rng := tensor.NewRNG(4)
	m := NewMonitor(rng, JetsonNano())
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		m.Step()
		n := m.BackgroundProcs()
		if n < 0 || n > 4 {
			t.Fatalf("background procs out of range: %d", n)
		}
		seen[n] = true
		p := m.Profile()
		if p.ComputeFLOPS <= 0 || p.ComputeFLOPS > m.Class.ComputeFLOPS {
			t.Fatalf("profile compute %v out of range", p.ComputeFLOPS)
		}
		if p.MemoryBytes < 0 || p.MemoryBytes > m.Class.MemoryBytes {
			t.Fatalf("profile memory %v out of range", p.MemoryBytes)
		}
		if p.BandwidthBps < 0.69*m.Class.BandwidthBps || p.BandwidthBps > 1.31*m.Class.BandwidthBps {
			t.Fatalf("bandwidth %v outside jitter band", p.BandwidthBps)
		}
	}
	if len(seen) < 3 {
		t.Fatal("random walk should visit several contention levels")
	}
}

func TestMonitorPinnedContention(t *testing.T) {
	rng := tensor.NewRNG(5)
	m := NewMonitor(rng, JetsonNano())
	m.SetBackgroundProcs(3)
	p := m.Profile()
	want := m.Class.ComputeFLOPS / ContentionFactor(3)
	if math.Abs(p.ComputeFLOPS-want) > 1e-3 {
		t.Fatalf("pinned contention compute %v, want %v", p.ComputeFLOPS, want)
	}
}

func TestFig1bShape(t *testing.T) {
	// Inference latency under contention must grow to ≈5× at 3 background
	// processes — the headline of the paper's Figure 1(b).
	rng := tensor.NewRNG(6)
	m := NewMonitor(rng, JetsonNano())
	model := nn.NewVGGLike(tensor.NewRNG(7), 3, 16, []int{16, 32}, 10, 1.0)
	fwd, _ := nn.ForwardCost(model, 3*16*16)
	m.SetBackgroundProcs(0)
	base := m.Profile().InferenceLatency(fwd)
	m.SetBackgroundProcs(3)
	loaded := m.Profile().InferenceLatency(fwd)
	ratio := loaded / base
	if math.Abs(ratio-5.06) > 0.05 {
		t.Fatalf("latency ratio %v, want ≈5.06", ratio)
	}
}
