package device

import (
	"repro/internal/nn"
)

// Profile is a point-in-time snapshot of a device's available resources: the
// output of the paper's local resource profiler and the constraint input to
// personalized sub-model derivation (Eq. 2's L_j vector).
type Profile struct {
	ComputeFLOPS float64 // effective compute after contention
	MemoryBytes  int64   // memory available to the learning workload
	BandwidthBps float64 // current network bandwidth
}

// ContentionFactor models inference/training slowdown from n co-running
// background processes competing for the device. Calibrated so that 3
// background processes give ≈5.06× latency, the paper's Figure 1(b)
// measurement on Jetson Nano; 0 gives 1×.
func ContentionFactor(backgroundProcs int) float64 {
	if backgroundProcs <= 0 {
		return 1
	}
	return 1 + 1.3533*float64(backgroundProcs)
}

// InferenceLatency returns seconds to run one forward pass of a model with
// the given per-sample FLOPs under the profile.
func (p Profile) InferenceLatency(flops int) float64 {
	if p.ComputeFLOPS <= 0 {
		return 0
	}
	return float64(flops) / p.ComputeFLOPS
}

// TrainBatchLatency returns seconds for one training step on batchSize
// samples (3× forward FLOPs per sample — forward, input grads, weight
// grads).
func (p Profile) TrainBatchLatency(fwdFlopsPerSample, batchSize int) float64 {
	return float64(3*fwdFlopsPerSample*batchSize) / p.ComputeFLOPS
}

// TransferTime returns seconds to move the given bytes over the link.
func (p Profile) TransferTime(bytes int64) float64 {
	if p.BandwidthBps <= 0 {
		return 0
	}
	return float64(bytes*8) / p.BandwidthBps
}

// FitsMemory reports whether a training workload with the given element
// footprint (see nn.TrainCost) fits the available memory.
func (p Profile) FitsMemory(memElems int, batchSize int) bool {
	return TrainMemoryBytes(memElems, batchSize) <= p.MemoryBytes
}

// TrainMemoryBytes converts a TrainCost element footprint into bytes,
// including optimizer state (momentum ≈ one extra copy of the parameters is
// already folded into TrainCost's 2×params term) and the framework's fixed
// overhead.
func TrainMemoryBytes(memElems int, batchSize int) int64 {
	const frameworkOverhead = 48 << 20 // resident interpreter/runtime
	return int64(memElems)*4*int64(batchSize) + frameworkOverhead
}

// InferenceMemoryBytes estimates inference peak memory: parameters plus two
// activation buffers.
func InferenceMemoryBytes(model nn.Layer, inElems int) int64 {
	const frameworkOverhead = 24 << 20
	_, act := nn.ForwardCost(model, inElems)
	params := nn.ParamCount(model.Params())
	return int64(params+2*act)*4 + frameworkOverhead
}

// ModelCost bundles the static resource costs of a model, used both by the
// cloud (to pre-compute module costs) and the experiments.
type ModelCost struct {
	Params     int
	Bytes      int64 // wire size of parameters
	FwdFLOPs   int   // per-sample forward FLOPs
	TrainFLOPs int   // per-sample training FLOPs
	TrainMemEl int   // training memory footprint in elements per sample
}

// CostOf computes a model's static resource costs for per-sample input size
// inElems.
func CostOf(model nn.Layer, inElems int) ModelCost {
	params := nn.ParamCount(model.Params())
	fwd, _ := nn.ForwardCost(model, inElems)
	tr, mem := nn.TrainCost(model, inElems)
	return ModelCost{
		Params:     params,
		Bytes:      int64(params) * 4,
		FwdFLOPs:   fwd,
		TrainFLOPs: tr,
		TrainMemEl: mem,
	}
}

// EnergyEfficiencyJPerGFLOP maps device classes to an approximate energy
// cost per GFLOP of neural-network compute. Flagship SoCs are the most
// efficient; IoT boards without accelerators pay the most — matching the
// energy spreads mobile-AI surveys report.
func EnergyEfficiencyJPerGFLOP(class Class) float64 {
	switch {
	case class.ComputeFLOPS >= 5e11:
		return 0.05
	case class.ComputeFLOPS >= 1e11:
		return 0.12
	case class.ComputeFLOPS >= 3e10:
		return 0.25
	default:
		return 0.6
	}
}

// TrainEnergyJ estimates the energy one training step costs on a device of
// the given class: training FLOPs × per-GFLOP energy.
func TrainEnergyJ(class Class, fwdFlopsPerSample, batch int) float64 {
	gflops := float64(3*fwdFlopsPerSample*batch) / 1e9
	return gflops * EnergyEfficiencyJPerGFLOP(class)
}

// TransferEnergyJ estimates radio energy for moving bytes at the class's
// nominal bandwidth, with a typical WiFi radio power of ~0.8 W.
func TransferEnergyJ(class Class, bytes int64) float64 {
	if class.BandwidthBps <= 0 {
		return 0
	}
	seconds := float64(bytes*8) / class.BandwidthBps
	return 0.8 * seconds
}
