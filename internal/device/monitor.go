package device

import (
	"repro/internal/tensor"
)

// Monitor is the runtime resource monitor of one simulated device: it tracks
// the inner runtime dynamics (co-running processes appearing and leaving,
// bandwidth jitter) and exposes the current Profile. The paper's online
// stage polls this before each sub-model derivation.
type Monitor struct {
	Class Class
	rng   *tensor.RNG

	// background process count evolves as a bounded random walk.
	backgroundProcs int
	maxProcs        int
	// memory pressure from co-running apps, bytes.
	foreignMemory int64
}

// NewMonitor creates a runtime monitor for a device of the given class.
func NewMonitor(rng *tensor.RNG, class Class) *Monitor {
	return &Monitor{Class: class, rng: rng.Split(), maxProcs: 4}
}

// Step advances the runtime state by one time slot: background processes
// arrive/depart and memory pressure drifts.
func (m *Monitor) Step() {
	switch m.rng.Intn(4) {
	case 0:
		if m.backgroundProcs < m.maxProcs {
			m.backgroundProcs++
		}
	case 1:
		if m.backgroundProcs > 0 {
			m.backgroundProcs--
		}
	}
	// Each background process occupies 200–600 MB.
	m.foreignMemory = 0
	for i := 0; i < m.backgroundProcs; i++ {
		m.foreignMemory += int64(200+m.rng.Intn(400)) << 20
	}
}

// SetBackgroundProcs pins the contention level (used by the Figure 1(b)
// experiment, which sweeps it explicitly).
func (m *Monitor) SetBackgroundProcs(n int) {
	m.backgroundProcs = n
	m.foreignMemory = int64(n) * (400 << 20)
}

// BackgroundProcs returns the current co-running process count.
func (m *Monitor) BackgroundProcs() int { return m.backgroundProcs }

// Profile returns the current available-resource snapshot.
func (m *Monitor) Profile() Profile {
	contention := ContentionFactor(m.backgroundProcs)
	mem := m.Class.MemoryBytes - m.foreignMemory
	if mem < 0 {
		mem = 0
	}
	// Bandwidth jitters ±30% around nominal.
	bw := m.Class.BandwidthBps * (0.7 + 0.6*m.rng.Float64())
	return Profile{
		ComputeFLOPS: m.Class.ComputeFLOPS / contention,
		MemoryBytes:  mem,
		BandwidthBps: bw,
	}
}
