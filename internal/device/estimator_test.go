package device

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// These tests pin the cross-device cost-model relationships that Figures 8,
// 9 and 13 rely on: the same model must be proportionally slower on weaker
// hardware, and model size must translate monotonically into every resource
// dimension.

func TestLatencyScalesInverselyWithCompute(t *testing.T) {
	rng := tensor.NewRNG(1)
	model := nn.NewVGGLike(rng, 3, 8, []int{16, 32}, 10, 1.0)
	fwd, _ := nn.ForwardCost(model, 3*8*8)
	nano := Profile{ComputeFLOPS: JetsonNano().ComputeFLOPS}
	pi := Profile{ComputeFLOPS: RaspberryPi().ComputeFLOPS}
	ratio := pi.InferenceLatency(fwd) / nano.InferenceLatency(fwd)
	want := JetsonNano().ComputeFLOPS / RaspberryPi().ComputeFLOPS
	if math.Abs(ratio-want) > 1e-9 {
		t.Fatalf("latency ratio %v, want compute ratio %v", ratio, want)
	}
}

func TestCostMonotoneAcrossModelSizes(t *testing.T) {
	rng := tensor.NewRNG(2)
	var prev ModelCost
	for i, rate := range []float64{0.25, 0.5, 1.0} {
		m := nn.NewMLP(rng, 64, []int{128, 128}, 6, rate)
		c := CostOf(m, 64)
		if i > 0 {
			if c.Params <= prev.Params || c.FwdFLOPs <= prev.FwdFLOPs ||
				c.TrainFLOPs <= prev.TrainFLOPs || c.TrainMemEl <= prev.TrainMemEl ||
				c.Bytes <= prev.Bytes {
				t.Fatalf("cost not monotone at rate %v: %+v vs %+v", rate, c, prev)
			}
		}
		prev = c
	}
}

func TestTransferTimeScalesWithBandwidth(t *testing.T) {
	fast := Profile{BandwidthBps: 100e6}
	slow := Profile{BandwidthBps: 10e6}
	const bytes = 1 << 20
	if r := slow.TransferTime(bytes) / fast.TransferTime(bytes); math.Abs(r-10) > 1e-9 {
		t.Fatalf("transfer ratio %v, want 10", r)
	}
	if (Profile{}).TransferTime(bytes) != 0 {
		t.Fatal("zero bandwidth should report 0 (unknown), not Inf")
	}
}

func TestContentionAffectsTrainingAndInferenceEqually(t *testing.T) {
	rng := tensor.NewRNG(3)
	m := NewMonitor(rng, JetsonNano())
	const fwd = 1_000_000
	m.SetBackgroundProcs(0)
	p0 := m.Profile()
	m.SetBackgroundProcs(2)
	p2 := m.Profile()
	infRatio := p2.InferenceLatency(fwd) / p0.InferenceLatency(fwd)
	trainRatio := p2.TrainBatchLatency(fwd, 16) / p0.TrainBatchLatency(fwd, 16)
	if math.Abs(infRatio-trainRatio) > 1e-9 {
		t.Fatalf("contention must scale both equally: %v vs %v", infRatio, trainRatio)
	}
	if math.Abs(infRatio-ContentionFactor(2)) > 1e-9 {
		t.Fatalf("ratio %v, want ContentionFactor(2)=%v", infRatio, ContentionFactor(2))
	}
}

func TestEnergyModelOrdering(t *testing.T) {
	flag := ClassByName("flagship-soc")
	pi := RaspberryPi()
	if EnergyEfficiencyJPerGFLOP(flag) >= EnergyEfficiencyJPerGFLOP(pi) {
		t.Fatal("flagship must be more energy-efficient than a Pi")
	}
	const fwd = 10_000_000
	eFlag := TrainEnergyJ(flag, fwd, 16)
	ePi := TrainEnergyJ(pi, fwd, 16)
	if eFlag >= ePi {
		t.Fatalf("same work must cost less energy on flagship: %v vs %v", eFlag, ePi)
	}
	if eFlag <= 0 {
		t.Fatal("energy must be positive")
	}
	// Transfer energy scales with bytes and inversely with bandwidth.
	if TransferEnergyJ(pi, 2<<20) <= TransferEnergyJ(pi, 1<<20) {
		t.Fatal("more bytes must cost more energy")
	}
	if TransferEnergyJ(flag, 1<<20) >= TransferEnergyJ(pi, 1<<20) {
		t.Fatal("faster link should finish sooner and spend less radio energy")
	}
	if TransferEnergyJ(Class{}, 100) != 0 {
		t.Fatal("zero bandwidth reports 0")
	}
}
