// Package metrics provides the formatting and tracking helpers the
// experiment harness uses to print the paper's tables and figures as text:
// aligned tables, named series with ASCII sparklines, unit formatting, and
// time-to-target convergence tracking.
package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Series is one line of a figure: named (x, y) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Mean returns the mean of Y (NaN for empty series).
func (s *Series) Mean() float64 {
	if len(s.Y) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range s.Y {
		sum += v
	}
	return sum / float64(len(s.Y))
}

// Last returns the final Y value (NaN for empty series).
func (s *Series) Last() float64 {
	if len(s.Y) == 0 {
		return math.NaN()
	}
	return s.Y[len(s.Y)-1]
}

// sparkRunes maps normalized values to block characters.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders Y as a compact ASCII strip.
func (s *Series) Sparkline() string {
	if len(s.Y) == 0 {
		return ""
	}
	lo, hi := s.Y[0], s.Y[0]
	for _, v := range s.Y {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range s.Y {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// Figure is a set of series sharing an x-axis, printed as a legend plus
// sparklines and summary statistics.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates a figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries creates and returns a new named series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Fprint renders the figure: one row per series with sparkline, mean, last.
func (f *Figure) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==  (x: %s, y: %s)\n", f.Title, f.XLabel, f.YLabel)
	nameW := 4
	for _, s := range f.Series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	for _, s := range f.Series {
		fmt.Fprintf(w, "%-*s  %s  mean=%.4f last=%.4f\n", nameW, s.Name, s.Sparkline(), s.Mean(), s.Last())
	}
}

// FprintPoints renders the figure's raw data as columns (x then one column
// per series), for plotting elsewhere.
func (f *Figure) FprintPoints(w io.Writer) {
	if len(f.Series) == 0 {
		return
	}
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	fmt.Fprintln(w, strings.Join(header, "\t"))
	n := 0
	for _, s := range f.Series {
		if len(s.X) > n {
			n = len(s.X)
		}
	}
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(f.Series)+1)
		x := math.NaN()
		for _, s := range f.Series {
			if i < len(s.X) {
				x = s.X[i]
				break
			}
		}
		row = append(row, fmt.Sprintf("%g", x))
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%.6g", s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
}

// FmtBytes renders a byte count with binary units.
func FmtBytes(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.2f %ciB", float64(b)/float64(div), "KMGTPE"[exp])
}

// FmtPct renders a fraction as a percentage.
func FmtPct(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }

// FmtDur renders simulated seconds with adaptive units.
func FmtDur(sec float64) string {
	switch {
	case sec < 1e-3:
		return fmt.Sprintf("%.1f µs", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.1f ms", sec*1e3)
	case sec < 120:
		return fmt.Sprintf("%.2f s", sec)
	default:
		return fmt.Sprintf("%.1f min", sec/60)
	}
}

// TimeToTarget scans a (time, accuracy) series and returns the first time at
// which accuracy reached target, or NaN if it never did.
func TimeToTarget(times, accs []float64, target float64) float64 {
	for i, a := range accs {
		if a >= target {
			return times[i]
		}
	}
	return math.NaN()
}

// Counters is an ordered set of named event tallies — link-fault outcomes,
// retry counts, dedup hits — printed alongside tables and figures. Insertion
// order is preserved so output is deterministic.
type Counters struct {
	Title string
	names []string
	vals  map[string]int64
}

// NewCounters creates an empty counter set.
func NewCounters(title string) *Counters {
	return &Counters{Title: title, vals: map[string]int64{}}
}

// Add increments a counter, registering it on first touch.
func (c *Counters) Add(name string, delta int64) {
	if _, ok := c.vals[name]; !ok {
		c.names = append(c.names, name)
	}
	c.vals[name] += delta
}

// Set overwrites a counter, registering it on first touch.
func (c *Counters) Set(name string, v int64) {
	if _, ok := c.vals[name]; !ok {
		c.names = append(c.names, name)
	}
	c.vals[name] = v
}

// Get returns a counter (0 if never touched).
func (c *Counters) Get(name string) int64 { return c.vals[name] }

// Fprint renders the counters in insertion order, aligned.
func (c *Counters) Fprint(w io.Writer) {
	if c.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", c.Title)
	}
	nameW := 0
	for _, n := range c.names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	for _, n := range c.names {
		fmt.Fprintf(w, "%-*s  %d\n", nameW, n, c.vals[n])
	}
}

// String renders the counters to a string.
func (c *Counters) String() string {
	var b strings.Builder
	c.Fprint(&b)
	return b.String()
}

// CSV renders the table as comma-separated values (headers first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Headers)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}
