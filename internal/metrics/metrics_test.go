package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("a", 1)
	tb.AddRow("longer-name", 2.5)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "demo") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "longer-name") || !strings.Contains(out, "2.50") {
		t.Fatalf("row content missing:\n%s", out)
	}
	// Header and separator share width.
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("separator misaligned:\n%s", out)
	}
}

func TestSeriesStats(t *testing.T) {
	s := &Series{Name: "x"}
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Last()) {
		t.Fatal("empty series should be NaN")
	}
	s.Add(0, 1)
	s.Add(1, 3)
	if s.Mean() != 2 || s.Last() != 3 {
		t.Fatalf("mean=%v last=%v", s.Mean(), s.Last())
	}
}

func TestSparklineMonotone(t *testing.T) {
	s := &Series{Name: "up"}
	for i := 0; i < 8; i++ {
		s.Add(float64(i), float64(i))
	}
	spark := []rune(s.Sparkline())
	if len(spark) != 8 {
		t.Fatalf("sparkline length %d", len(spark))
	}
	if spark[0] != '▁' || spark[7] != '█' {
		t.Fatalf("sparkline endpoints wrong: %s", string(spark))
	}
	flat := &Series{Name: "flat"}
	flat.Add(0, 5)
	flat.Add(1, 5)
	if fs := flat.Sparkline(); fs != "▁▁" {
		t.Fatalf("flat sparkline = %q", fs)
	}
}

func TestFigurePrint(t *testing.T) {
	f := NewFigure("fig", "step", "acc")
	a := f.AddSeries("nebula")
	a.Add(0, 0.5)
	a.Add(1, 0.9)
	var b strings.Builder
	f.Fprint(&b)
	if !strings.Contains(b.String(), "nebula") || !strings.Contains(b.String(), "mean=0.7000") {
		t.Fatalf("figure output:\n%s", b.String())
	}
	var pts strings.Builder
	f.FprintPoints(&pts)
	if !strings.Contains(pts.String(), "step\tnebula") {
		t.Fatalf("points output:\n%s", pts.String())
	}
}

func TestFmtHelpers(t *testing.T) {
	if FmtBytes(512) != "512 B" {
		t.Fatal(FmtBytes(512))
	}
	if FmtBytes(1536) != "1.50 KiB" {
		t.Fatal(FmtBytes(1536))
	}
	if FmtBytes(3<<20) != "3.00 MiB" {
		t.Fatal(FmtBytes(3 << 20))
	}
	if FmtPct(0.1234) != "12.34%" {
		t.Fatal(FmtPct(0.1234))
	}
	if FmtDur(0.0005) != "500.0 µs" {
		t.Fatal(FmtDur(0.0005))
	}
	if FmtDur(0.5) != "500.0 ms" {
		t.Fatal(FmtDur(0.5))
	}
	if FmtDur(90) != "90.00 s" {
		t.Fatal(FmtDur(90))
	}
	if FmtDur(600) != "10.0 min" {
		t.Fatal(FmtDur(600))
	}
}

func TestTimeToTarget(t *testing.T) {
	times := []float64{1, 2, 3, 4}
	accs := []float64{0.2, 0.5, 0.8, 0.9}
	if got := TimeToTarget(times, accs, 0.75); got != 3 {
		t.Fatalf("TimeToTarget = %v", got)
	}
	if got := TimeToTarget(times, accs, 0.99); !math.IsNaN(got) {
		t.Fatalf("unreached target should be NaN, got %v", got)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "name", "value")
	tb.AddRow("plain", 1)
	tb.AddRow("with,comma", `say "hi"`)
	csv := tb.CSV()
	want := "name,value\nplain,1\n\"with,comma\",\"say \"\"hi\"\"\"\n"
	if csv != want {
		t.Fatalf("CSV:\n%q\nwant:\n%q", csv, want)
	}
}

func TestCountersInsertionOrderAndArithmetic(t *testing.T) {
	c := NewCounters("link faults")
	c.Add("zulu", 2)
	c.Add("alpha", 1)
	c.Add("zulu", 3)
	c.Set("mike", 7)
	if got := c.Get("zulu"); got != 5 {
		t.Fatalf("Get(zulu) = %d, want 5", got)
	}
	if got := c.Get("missing"); got != 0 {
		t.Fatalf("Get(missing) = %d, want 0", got)
	}
	// Output must follow insertion order, not map or alphabetical order.
	want := "== link faults ==\nzulu   5\nalpha  1\nmike   7\n"
	if got := c.String(); got != want {
		t.Fatalf("String:\n%q\nwant:\n%q", got, want)
	}
}
