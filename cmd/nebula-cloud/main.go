// Command nebula-cloud runs the cloud side of the real-network testbed: it
// pre-trains a modularized model (offline stage) and serves personalized
// sub-models to nebula-edge clients over TCP, aggregating their updates
// module-wise.
//
// Usage:
//
//	nebula-cloud -task har-mlp -addr :7070 -agg 4
//
// Edge devices connect with nebula-edge using the same -task and -seed so
// both sides build identical model skeletons.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/data"
	"repro/internal/edgenet"
	"repro/internal/fed"
	"repro/internal/modular"
	"repro/internal/obs"
	"repro/internal/tensor"
)

func main() {
	var (
		taskName  = flag.String("task", "har-mlp", "task: har-mlp | image10-resnet | image100-vgg | speech-resnet")
		addr      = flag.String("addr", ":7070", "listen address")
		agg       = flag.Int("agg", 4, "aggregate after this many uploads")
		seed      = flag.Int64("seed", 1, "shared seed (must match edges)")
		proxy     = flag.Int("proxy", 40, "proxy samples per class for offline training")
		epochs    = flag.Int("epochs", 5, "offline training epochs")
		scale     = flag.String("scale", "quick", "model scale: quick | paper")
		quiet     = flag.Bool("quiet", false, "suppress per-request logging")
		loadPath  = flag.String("load", "", "load a checkpoint instead of offline training")
		savePath  = flag.String("save", "", "write a checkpoint after offline training and on shutdown")
		adminAddr = flag.String("admin-addr", "", "serve /metrics, /statusz, /healthz and /debug/pprof/ on this address (merges the RPC server's registry with process telemetry)")
	)
	flag.Parse()

	sc := fed.ScaleQuick
	if *scale == "paper" {
		sc = fed.ScalePaper
	}
	task := fed.TaskByName(*taskName, *seed, sc)
	if task == nil {
		fmt.Fprintf(os.Stderr, "nebula-cloud: unknown task %q\n", *taskName)
		os.Exit(2)
	}

	rng := tensor.NewRNG(*seed)
	model := task.BuildModular(rng)
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			log.Fatalf("open checkpoint: %v", err)
		}
		if err := modular.LoadCheckpoint(f, model); err != nil {
			log.Fatalf("load checkpoint: %v", err)
		}
		f.Close()
		log.Printf("restored checkpoint %s", *loadPath)
	} else {
		log.Printf("offline stage: modularizing and training %s (seed %d)", task.Name, *seed)
		proxyDS := data.MakeBalancedDataset(rng, task.Gen, data.DefaultEnv(), *proxy)
		tc := modular.DefaultTrainConfig()
		tc.Epochs = *epochs
		tc.GroupSize = task.GroupSize
		model.TrainEndToEnd(rng, proxyDS, tc)
		ae := tc
		ae.Epochs = (tc.Epochs + 1) / 2
		model.AbilityEnhance(rng, proxyDS, ae)
		log.Printf("offline stage complete; %d module layers", len(model.Layers))
		saveCheckpoint(*savePath, model)
	}

	srv := edgenet.NewServer(model, *agg)
	if !*quiet {
		srv.Logf = log.Printf
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("cloud serving %s on %s (aggregate every %d updates)", task.Name, bound, *agg)

	var admin *obs.Admin
	if *adminAddr != "" {
		admin = obs.NewAdmin(obs.Default(), srv.Registry())
		adminBound, err := admin.Listen(*adminAddr)
		if err != nil {
			log.Fatalf("admin listen: %v", err)
		}
		admin.SetState("running")
		log.Printf("admin plane on http://%s (/metrics, /statusz, /debug/pprof/)", adminBound)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	srv.FlushAggregation()
	st := srv.StatsSnapshot()
	log.Printf("shutting down: served %d sub-models, received %d updates, %d aggregations",
		st.SubModelsServed, st.UpdatesReceived, st.Aggregations)
	srv.Close()
	if admin != nil {
		_ = admin.Close()
	}
	saveCheckpoint(*savePath, model)
}

// saveCheckpoint writes the model to path if a path was given.
func saveCheckpoint(path string, model *modular.Model) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Printf("save checkpoint: %v", err)
		return
	}
	defer f.Close()
	if err := modular.SaveCheckpoint(f, model); err != nil {
		log.Printf("save checkpoint: %v", err)
		return
	}
	log.Printf("checkpoint written to %s", path)
}
