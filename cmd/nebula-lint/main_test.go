package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"

	"repro/internal/lint"
)

// TestRenderJSONByteStable pins the -json wire format: fixed field order,
// valid JSON, byte-identical across renders (ci.sh archives the output as a
// build artifact and diffs it between runs).
func TestRenderJSONByteStable(t *testing.T) {
	diags := []lint.Diagnostic{
		{Pos: token.Position{Filename: "a.go", Line: 3}, Check: "maporder", Message: `quote " and slash \`},
		{Pos: token.Position{Filename: "b.go", Line: 7}, Check: "lockedcall", Message: "plain"},
	}
	first := renderJSON(diags)
	for i := 0; i < 3; i++ {
		if got := renderJSON(diags); !bytes.Equal(got, first) {
			t.Fatalf("render %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
	var parsed []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(first, &parsed); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, first)
	}
	if len(parsed) != 2 || parsed[0].File != "a.go" || parsed[0].Line != 3 ||
		parsed[1].Check != "lockedcall" || parsed[0].Message != `quote " and slash \` {
		t.Fatalf("round-trip mismatch: %+v", parsed)
	}
}

// TestRenderJSONEmpty: no findings is the empty array, newline-terminated —
// never null — so downstream jq/grep always see an array.
func TestRenderJSONEmpty(t *testing.T) {
	if got := renderJSON(nil); string(got) != "[]\n" {
		t.Fatalf("empty render = %q, want %q", got, "[]\n")
	}
}

// TestCheckSet: -checks accepts real and pseudo names and rejects unknowns.
func TestCheckSet(t *testing.T) {
	got := checkSet("maporder, loaderror,nolint,bogus")
	for _, name := range []string{"maporder", "loaderror", "nolint"} {
		if !got[name] {
			t.Errorf("checkSet dropped %q", name)
		}
	}
	if got["bogus"] {
		t.Error("checkSet accepted unknown name")
	}
	if checkSet("") != nil {
		t.Error("empty spec must mean all checks (nil set)")
	}
}
