// Command nebula-lint is the project's static analyzer: it enforces the
// determinism and concurrency invariants Nebula's correctness claims rest on
// (module-wise aggregation order, leak-free goroutine fan-out, error-checked
// protocol I/O, lock hygiene, config-seeded randomness, and the
// coordinator/worker/reduce contract of the parallel executor). The engine is
// whole-program and fully type-checked: cross-package captures, transitive
// blocking callees, and sink types all resolve for real.
//
// Usage:
//
//	nebula-lint ./...                    lint the whole tree (default)
//	nebula-lint -list                    one line per check (incl. pseudo-checks)
//	nebula-lint -checks maporder,goleak internal/modular
//	nebula-lint -unscoped internal/lint/testdata
//	nebula-lint -json ./...              byte-stable JSON findings array
//	nebula-lint -baseline lint.baseline ./...
//	nebula-lint -write-baseline lint.baseline ./...
//
// Diagnostics print as `file:line: [check] message`; the exit status is 1
// when any finding survives //nolint and baseline filtering, so `make check`
// and ci.sh can gate on it. Suppress a finding with `//nolint:check -- reason`
// on or above the offending line; a reason is mandatory.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		list          = flag.Bool("list", false, "describe every check and exit")
		checks        = flag.String("checks", "", "comma-separated subset of checks to report (default: all)")
		unscoped      = flag.Bool("unscoped", false, "ignore per-check path scoping (lint fixture trees)")
		jsonOut       = flag.Bool("json", false, "emit findings as a byte-stable JSON array")
		baselinePath  = flag.String("baseline", "", "filter findings against this baseline file")
		writeBaseline = flag.String("write-baseline", "", "write surviving findings to this baseline file and exit 0")
	)
	flag.Parse()

	analyzers := lint.All()
	if *list {
		printList(analyzers)
		return
	}

	reported := checkSet(*checks)
	if *checks != "" && len(reported) == 0 {
		fmt.Fprintf(os.Stderr, "nebula-lint: no known checks in %q (see -list)\n", *checks)
		os.Exit(2)
	}

	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"./..."}
	}
	pkgs, err := lint.Load(roots)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nebula-lint:", err)
		os.Exit(2)
	}

	runner := &lint.Runner{Analyzers: analyzers, Unscoped: *unscoped}
	diags := runner.Run(pkgs)
	if reported != nil {
		// Filter the final stream by name rather than pruning Analyzers: the
		// loader and nolint pseudo-checks flow through the same stream, so
		// `-checks loaderror` works, and fixture noise from other checks is
		// dropped even in -unscoped runs.
		var kept []lint.Diagnostic
		for _, d := range diags {
			if reported[d.Check] {
				kept = append(kept, d)
			}
		}
		diags = kept
	}

	if *baselinePath != "" {
		base, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nebula-lint: baseline:", err)
			os.Exit(2)
		}
		var suppressed int
		diags, suppressed = lint.FilterBaseline(diags, base)
		if suppressed > 0 {
			fmt.Fprintf(os.Stderr, "nebula-lint: %d baselined finding(s) suppressed\n", suppressed)
		}
	}

	if *writeBaseline != "" {
		if err := lint.WriteBaseline(*writeBaseline, diags); err != nil {
			fmt.Fprintln(os.Stderr, "nebula-lint: write baseline:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "nebula-lint: wrote %s (%d finding(s))\n", *writeBaseline, len(diags))
		return
	}

	if *jsonOut {
		os.Stdout.Write(renderJSON(diags))
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "nebula-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// printList writes one line per check — name, then doc — followed by an
// indented scope line. Pseudo-checks (loaderror, nolint) are listed too: they
// appear in diagnostics and -checks like real checks.
func printList(analyzers []lint.Analyzer) {
	for _, a := range analyzers {
		scope := "all packages"
		if paths := a.DefaultPaths(); len(paths) > 0 {
			scope = strings.Join(paths, ", ")
		}
		fmt.Printf("%-13s %s\n%-13s scope: %s\n", a.Name(), a.Doc(), "", scope)
	}
	for _, p := range lint.PseudoChecks() {
		fmt.Printf("%-13s %s\n%-13s scope: all packages (pseudo-check)\n", p.Name, p.Doc, "")
	}
}

// checkSet parses the -checks spec against real and pseudo check names.
// Returns nil when the spec is empty (report everything).
func checkSet(spec string) map[string]bool {
	if spec == "" {
		return nil
	}
	known := map[string]bool{}
	for _, a := range lint.All() {
		known[a.Name()] = true
	}
	for _, p := range lint.PseudoChecks() {
		known[p.Name] = true
	}
	out := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		if name = strings.TrimSpace(name); name != "" && known[name] {
			out[name] = true
		}
	}
	return out
}

// renderJSON renders findings as a byte-stable JSON array: fixed field order,
// one object per line, input already sorted by the runner. An empty run is
// `[]`, not null, so downstream tooling can always parse an array.
func renderJSON(diags []lint.Diagnostic) []byte {
	var b bytes.Buffer
	b.WriteString("[")
	for i, d := range diags {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n  ")
		file, _ := json.Marshal(d.Pos.Filename)
		check, _ := json.Marshal(d.Check)
		msg, _ := json.Marshal(d.Message)
		fmt.Fprintf(&b, `{"file": %s, "line": %d, "check": %s, "message": %s}`,
			file, d.Pos.Line, check, msg)
	}
	if len(diags) > 0 {
		b.WriteString("\n")
	}
	b.WriteString("]\n")
	return b.Bytes()
}
