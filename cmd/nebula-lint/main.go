// Command nebula-lint is the project's static analyzer: it enforces the
// determinism and concurrency invariants Nebula's correctness claims rest on
// (module-wise aggregation order, leak-free goroutine fan-out, error-checked
// protocol I/O, lock hygiene, and config-seeded randomness).
//
// Usage:
//
//	nebula-lint ./...                    lint the whole tree (default)
//	nebula-lint -list                    describe every check
//	nebula-lint -checks maporder,goleak internal/modular
//	nebula-lint -unscoped internal/lint/testdata
//
// Diagnostics print as `file:line: [check] message`; the exit status is 1
// when any finding survives //nolint filtering, so `make check` and ci.sh
// can gate on it. Suppress a finding with `//nolint:check -- reason` on or
// above the offending line; a reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		list     = flag.Bool("list", false, "describe every check and exit")
		checks   = flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
		unscoped = flag.Bool("unscoped", false, "ignore per-check path scoping (lint fixture trees)")
	)
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			scope := "all packages"
			if paths := a.DefaultPaths(); len(paths) > 0 {
				scope = strings.Join(paths, ", ")
			}
			fmt.Printf("%-10s %s\n%-10s scope: %s\n", a.Name(), a.Doc(), "", scope)
		}
		return
	}
	if *checks != "" {
		analyzers = selectChecks(analyzers, *checks)
		if len(analyzers) == 0 {
			fmt.Fprintf(os.Stderr, "nebula-lint: no known checks in %q (see -list)\n", *checks)
			os.Exit(2)
		}
	}

	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"./..."}
	}
	pkgs, err := lint.Load(roots)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nebula-lint:", err)
		os.Exit(2)
	}

	runner := &lint.Runner{Analyzers: analyzers, Unscoped: *unscoped}
	diags := runner.Run(pkgs)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "nebula-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func selectChecks(all []lint.Analyzer, spec string) []lint.Analyzer {
	want := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		if name = strings.TrimSpace(name); name != "" {
			want[name] = true
		}
	}
	var out []lint.Analyzer
	for _, a := range all {
		if want[a.Name()] {
			out = append(out, a)
		}
	}
	return out
}
