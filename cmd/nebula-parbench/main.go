// Command nebula-parbench measures the wall-clock effect of the parallel
// round executor (docs/PARALLEL.md): one Nebula adaptation round at 25
// devices per round, once with -workers 1 (the old serial loop) and once
// with every available CPU. It writes BENCH_parallel.json, the
// machine-readable record of the round-level speedup on this machine.
//
// The two configurations produce bitwise-identical models, costs, and
// traces (the differential gate in internal/fed/parallel_test.go holds the
// repo to that); only wall-clock time may differ. The speedup is bounded by
// the core count: on a 1-CPU machine it is ~1.0 by construction, on ≥4
// cores the round is expected to run ≥2× faster.
//
// Usage:
//
//	go run ./cmd/nebula-parbench            # writes BENCH_parallel.json
//	go run ./cmd/nebula-parbench -out path  # writes elsewhere
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/data"
	"repro/internal/fed"
	"repro/internal/tensor"
)

// devicesPerRound matches the paper's online stage (~20-25 concurrent
// devices per round) and the ISSUE's benchmark point.
const devicesPerRound = 25

// Result is one benchmark row of BENCH_parallel.json.
type Result struct {
	Name    string  `json:"name"`
	Workers int     `json:"workers"`
	NsPerOp float64 `json:"ns_per_op"`
	// SpeedupVsSerial is serial round time ÷ this row's round time measured
	// in the same run, on the same machine; 0 for the serial row itself.
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
}

// Report is the BENCH_parallel.json document.
type Report struct {
	GoVersion       string   `json:"go_version"`
	GOARCH          string   `json:"goarch"`
	GOMAXPROCS      int      `json:"gomaxprocs"`
	NumCPU          int      `json:"num_cpu"`
	DevicesPerRound int      `json:"devices_per_round"`
	Note            string   `json:"note"`
	Results         []Result `json:"results"`
}

// roundBench returns a benchmark closure running one full Nebula round
// (sample, derive, train, aggregate) over a 25-device fleet with the given
// worker count. Setup (pretrain, fleet build) happens outside the timer.
func roundBench(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		rng := tensor.NewRNG(7)
		task := fed.HARTask(8, fed.ScaleQuick)
		cfg := fed.DefaultConfig()
		cfg.Rounds = 1
		cfg.DevicesPerRound = devicesPerRound
		cfg.LocalEpochs = 1
		cfg.Workers = workers
		nb := fed.NewNebula(task, cfg)
		nb.TrainCfg.Epochs = 1
		proxy := data.MakeBalancedDataset(rng, task.Gen, data.DefaultEnv(), 20)
		nb.Pretrain(rng, proxy)
		fleet := data.NewFleet(rng, task.Gen, data.PartitionConfig{
			NumDevices: devicesPerRound, ClassesPerDevice: 2,
			MinVolume: 40, MaxVolume: 80,
		})
		clients := fed.NewClients(rng, fleet)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nb.Adapt(tensor.NewRNG(int64(i+1)), clients)
		}
	}
}

func run(name string, workers int) Result {
	r := testing.Benchmark(roundBench(workers))
	res := Result{
		Name:    name,
		Workers: workers,
		NsPerOp: float64(r.T.Nanoseconds()) / float64(r.N),
	}
	fmt.Fprintf(os.Stderr, "%-32s %14.0f ns/op\n", name, res.NsPerOp)
	return res
}

func main() {
	out := flag.String("out", "BENCH_parallel.json", "output path for the parallel-round benchmark report")
	flag.Parse()

	serial := run("nebula_round_25dev_serial", 1)
	ncpu := runtime.NumCPU()
	par := run(fmt.Sprintf("nebula_round_25dev_workers_%d", ncpu), ncpu)
	if par.NsPerOp > 0 {
		par.SpeedupVsSerial = serial.NsPerOp / par.NsPerOp
	}

	rep := Report{
		GoVersion:       runtime.Version(),
		GOARCH:          runtime.GOARCH,
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		NumCPU:          ncpu,
		DevicesPerRound: devicesPerRound,
		Note:            "both rows produce bitwise-identical artifacts; speedup is bounded by the core count (~1.0 on 1 CPU, >=2x expected on >=4 cores)",
		Results:         []Result{serial, par},
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "nebula-parbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "nebula-parbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "nebula-parbench: wrote %s\n", *out)
}
