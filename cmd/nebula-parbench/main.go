// Command nebula-parbench measures the wall-clock effect of the parallel
// round executor (docs/PARALLEL.md): one Nebula adaptation round at 25
// devices per round, once with -workers 1 (the old serial loop) and once
// with every available CPU. It writes BENCH_parallel.json, the
// machine-readable record of the round-level speedup on this machine.
//
// The two configurations produce bitwise-identical models, costs, and
// traces (the differential gate in internal/fed/parallel_test.go holds the
// repo to that); only wall-clock time may differ. The speedup is bounded by
// the core count: on a 1-CPU machine it is ~1.0 by construction, on ≥4
// cores the round is expected to run ≥2× faster.
//
// Because that bound makes the wall-clock rows useless for judging the GEMM
// band grid on small boxes, -synth-procs adds a synthetic GOMAXPROCS scaling
// table: for each worker count it asks tensor.GemmSynthBands for the exact
// band partition runPacked would schedule, times every band serially under
// GOMAXPROCS=1, and reports the makespan and the partition-balance speedup.
// Those points measure the grid itself and are meaningful for worker counts
// far above this machine's core count.
//
// Usage:
//
//	go run ./cmd/nebula-parbench                 # writes BENCH_parallel.json
//	go run ./cmd/nebula-parbench -out path       # writes elsewhere
//	go run ./cmd/nebula-parbench -synth-procs 1,2,4,8,16,32
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/fed"
	"repro/internal/tensor"
)

// devicesPerRound matches the paper's online stage (~20-25 concurrent
// devices per round) and the ISSUE's benchmark point.
const devicesPerRound = 25

// Result is one benchmark row of BENCH_parallel.json.
type Result struct {
	Name    string  `json:"name"`
	Workers int     `json:"workers"`
	NsPerOp float64 `json:"ns_per_op"`
	// SpeedupVsSerial is serial round time ÷ this row's round time measured
	// in the same run, on the same machine; 0 for the serial row itself.
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
}

// Report is the BENCH_parallel.json document.
type Report struct {
	GoVersion       string   `json:"go_version"`
	GOARCH          string   `json:"goarch"`
	GOMAXPROCS      int      `json:"gomaxprocs"`
	NumCPU          int      `json:"num_cpu"`
	DevicesPerRound int      `json:"devices_per_round"`
	Note            string   `json:"note"`
	Results         []Result `json:"results"`
}

// roundBench returns a benchmark closure running one full Nebula round
// (sample, derive, train, aggregate) over a 25-device fleet with the given
// worker count. Setup (pretrain, fleet build) happens outside the timer.
func roundBench(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		rng := tensor.NewRNG(7)
		task := fed.HARTask(8, fed.ScaleQuick)
		cfg := fed.DefaultConfig()
		cfg.Rounds = 1
		cfg.DevicesPerRound = devicesPerRound
		cfg.LocalEpochs = 1
		cfg.Workers = workers
		nb := fed.NewNebula(task, cfg)
		nb.TrainCfg.Epochs = 1
		proxy := data.MakeBalancedDataset(rng, task.Gen, data.DefaultEnv(), 20)
		nb.Pretrain(rng, proxy)
		fleet := data.NewFleet(rng, task.Gen, data.PartitionConfig{
			NumDevices: devicesPerRound, ClassesPerDevice: 2,
			MinVolume: 40, MaxVolume: 80,
		})
		clients := fed.NewClients(rng, fleet)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nb.Adapt(tensor.NewRNG(int64(i+1)), clients)
		}
	}
}

func run(name string, workers int) Result {
	r := testing.Benchmark(roundBench(workers))
	res := Result{
		Name:    name,
		Workers: workers,
		NsPerOp: float64(r.T.Nanoseconds()) / float64(r.N),
	}
	fmt.Fprintf(os.Stderr, "%-32s %14.0f ns/op\n", name, res.NsPerOp)
	return res
}

// synthM/N/K is the GEMM shape of the synthetic scaling table: the im2col
// shape of the 64-filter 3×3×64 conv over a 16×16 plane, the same shape
// nebula-bench tracks as gemm_conv_64x256x576.
const (
	synthM = 64
	synthN = 256
	synthK = 576
)

// synthScaling measures the band-grid partition for a hypothetical
// Parallelism of procs without needing procs cores: every band of the grid
// (tensor.GemmSynthBands) is timed serially under GOMAXPROCS=1 — so no other
// goroutine can be scheduled into the measurement — and the synthetic round
// time is the makespan (the longest band; the grid never has more bands than
// procs, so each worker owns one band). SpeedupVsSerial is the serial sweep
// (sum of all bands) over the makespan: it reflects purely how evenly the
// 2-D grid splits the tile space, the quantity that caps real ≥4-core
// scaling.
func synthScaling(procs int) Result {
	bands, release := tensor.GemmSynthBands(synthM, synthN, synthK, procs)
	defer release()

	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	// Min-of-reps per band: least-interference estimate on a shared box.
	bandNs := make([]float64, len(bands))
	const reps = 7
	for rep := 0; rep < reps; rep++ {
		for i, band := range bands {
			start := time.Now() //nolint:rawclock -- parbench measures real wall time by design
			band()
			ns := float64(time.Since(start).Nanoseconds()) //nolint:rawclock -- same measurement, stop side
			if rep == 0 || ns < bandNs[i] {
				bandNs[i] = ns
			}
		}
	}
	var sum, makespan float64
	for _, ns := range bandNs {
		sum += ns
		if ns > makespan {
			makespan = ns
		}
	}
	res := Result{
		Name:    fmt.Sprintf("gemm_synth_%dx%dx%d_procs_%d", synthM, synthN, synthK, procs),
		Workers: procs,
		NsPerOp: makespan,
	}
	if makespan > 0 {
		res.SpeedupVsSerial = sum / makespan
	}
	fmt.Fprintf(os.Stderr, "%-32s %14.0f ns/op  synth-speedup %.2fx (%d bands)\n",
		res.Name, res.NsPerOp, res.SpeedupVsSerial, len(bands))
	return res
}

func parseProcs(spec string) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	var procs []int
	for _, part := range strings.Split(spec, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || p < 1 {
			return nil, fmt.Errorf("bad -synth-procs entry %q", part)
		}
		procs = append(procs, p)
	}
	return procs, nil
}

func main() {
	out := flag.String("out", "BENCH_parallel.json", "output path for the parallel-round benchmark report")
	synthProcs := flag.String("synth-procs", "1,2,4,8,16",
		"comma-separated synthetic GOMAXPROCS points for the band-grid scaling table (empty disables)")
	flag.Parse()

	procsList, err := parseProcs(*synthProcs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nebula-parbench:", err)
		os.Exit(2)
	}

	serial := run("nebula_round_25dev_serial", 1)
	ncpu := runtime.NumCPU()
	par := run(fmt.Sprintf("nebula_round_25dev_workers_%d", ncpu), ncpu)
	if par.NsPerOp > 0 {
		par.SpeedupVsSerial = serial.NsPerOp / par.NsPerOp
	}
	results := []Result{serial, par}
	for _, p := range procsList {
		results = append(results, synthScaling(p))
	}

	rep := Report{
		GoVersion:       runtime.Version(),
		GOARCH:          runtime.GOARCH,
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		NumCPU:          ncpu,
		DevicesPerRound: devicesPerRound,
		Note: "round rows produce bitwise-identical artifacts and their speedup is bounded by the core count; " +
			"gemm_synth rows are GOMAXPROCS-pinned per-band timings whose synthetic speedup models the band-grid " +
			"partition balance at the given worker count regardless of this machine's cores (docs/PARALLEL.md)",
		Results: results,
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "nebula-parbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "nebula-parbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "nebula-parbench: wrote %s\n", *out)
}
