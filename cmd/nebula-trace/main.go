// Command nebula-trace summarizes a structured adaptation log (JSON lines
// produced by internal/trace): rounds, per-way traffic, simulated time, and
// the accuracy trajectory as a sparkline.
//
// Usage:
//
//	nebula-trace run.jsonl
//	... | nebula-trace -
//	nebula-trace -metrics run.jsonl
//
// -metrics replays the log through the same RoundMetrics accounting the live
// simulator records (internal/fed) and prints the resulting registry in
// Prometheus text exposition format — the offline counterpart of scraping a
// live run's /metrics endpoint. Replaying a trace and scraping the run that
// produced it yield identical deterministic families (docs/OBSERVABILITY.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/fed"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	metricsMode := flag.Bool("metrics", false, "print the replayed registry in Prometheus text format instead of the human summary")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: nebula-trace [-metrics] <file.jsonl | ->")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	var r io.Reader = os.Stdin
	if flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "nebula-trace:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	events, err := trace.Read(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nebula-trace:", err)
		os.Exit(1)
	}
	// A gap in the sequence numbers means the producer dropped events (e.g.
	// a failed write): the summary below would silently understate the run,
	// so refuse to summarize a torn log.
	if err := trace.CheckSeq(events); err != nil {
		fmt.Fprintln(os.Stderr, "nebula-trace:", err)
		os.Exit(1)
	}
	if *metricsMode {
		reg := fed.ReplayTrace(events)
		if err := obs.WritePrometheus(os.Stdout, reg.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "nebula-trace:", err)
			os.Exit(1)
		}
		return
	}
	s := trace.Summarize(events)
	fmt.Printf("events:       %d\n", len(events))
	fmt.Printf("rounds:       %d\n", s.Rounds)
	fmt.Printf("traffic:      ↓%s ↑%s\n", metrics.FmtBytes(s.BytesDown), metrics.FmtBytes(s.BytesUp))
	fmt.Printf("sim time:     %s (slowest client per round)\n", metrics.FmtDur(s.SimTime))
	if len(s.Accuracy) > 0 {
		series := &metrics.Series{Name: "accuracy"}
		for i, a := range s.Accuracy {
			series.Add(float64(i), a)
		}
		fmt.Printf("accuracy:     %s  first=%.4f last=%.4f\n", series.Sparkline(), s.Accuracy[0], series.Last())
	}
	// Per-client participation histogram.
	perClient := map[int]int{}
	for _, e := range events {
		if e.Kind == trace.KindClientUpdate {
			perClient[e.Client]++
		}
	}
	if len(perClient) > 0 {
		fmt.Printf("participants: %d distinct devices\n", len(perClient))
	}
}
