// Command nebula-edge runs one edge device of the real-network testbed: it
// connects to nebula-cloud, fetches the unified selector, and then loops
// through adaptation steps — shift local data, score module importance,
// fetch a personalized sub-model, train it on fresh local data, and push the
// update back.
//
// Usage:
//
//	nebula-edge -addr 127.0.0.1:7070 -task har-mlp -id 3 -steps 5 -m 2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/edgenet"
	"repro/internal/fed"
	"repro/internal/metrics"
	"repro/internal/modular"
	"repro/internal/tensor"
)

func main() {
	var (
		taskName = flag.String("task", "har-mlp", "task (must match cloud)")
		addr     = flag.String("addr", "127.0.0.1:7070", "cloud address")
		id       = flag.Int("id", 0, "device id")
		seed     = flag.Int64("seed", 1, "shared seed (must match cloud)")
		steps    = flag.Int("steps", 3, "adaptation steps")
		m        = flag.Int("m", 2, "classes per device (label skew)")
		volume   = flag.Int("volume", 80, "local samples")
		epochs   = flag.Int("epochs", 3, "local epochs per step")
		shift    = flag.Float64("shift", 0.5, "data replaced per step")
		devClass = flag.String("class", "jetson-nano", "device class for the resource profile")
		scale    = flag.String("scale", "quick", "model scale: quick | paper")
		quant    = flag.Bool("quant", false, "8-bit-quantize parameter transfers")
		timeout  = flag.Duration("timeout", 15*time.Second, "per-call deadline before a retry")
		retries  = flag.Int("retries", 4, "attempts per call (reconnect + backoff between attempts)")
		faults   = flag.String("faults", "", "inject a seeded lossy link client-side, e.g. 'drop=0.25,delay=20ms,reset=0.05,seed=7'")
	)
	flag.Parse()

	sc := fed.ScaleQuick
	if *scale == "paper" {
		sc = fed.ScalePaper
	}
	task := fed.TaskByName(*taskName, *seed, sc)
	if task == nil {
		fmt.Fprintf(os.Stderr, "nebula-edge: unknown task %q\n", *taskName)
		os.Exit(2)
	}

	// The skeleton shares the cloud's architecture via the common seed; all
	// weights are replaced by downloads.
	skeleton := task.BuildModular(tensor.NewRNG(*seed))
	var cl *edgenet.EdgeClient
	var err error
	if *faults != "" {
		cfg, specErr := edgenet.ParseFaultSpec(*faults)
		if specErr != nil {
			log.Fatalf("faults: %v", specErr)
		}
		if cfg.Seed == 0 {
			cfg.Seed = *seed
		}
		cl, err = edgenet.DialFaulty(*addr, *id, skeleton, cfg)
	} else {
		cl, err = edgenet.Dial(*addr, *id, skeleton)
	}
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	cl.Quantize = *quant
	cl.Policy.CallTimeout = *timeout
	cl.Policy.MaxAttempts = *retries
	cl.Policy.Seed = *seed
	defer cl.Close()
	if err := cl.Hello(); err != nil {
		log.Fatalf("hello: %v", err)
	}
	log.Printf("device %d connected to %s (%s)", *id, *addr, task.Name)

	rng := tensor.NewRNG(*seed*1000 + int64(*id))
	mClasses := *m
	if mClasses <= 0 || mClasses > task.Classes {
		mClasses = task.Classes
	}
	start := rng.Intn(task.Classes)
	classes := make([]int, mClasses)
	for i := range classes {
		classes[i] = (start + i) % task.Classes
	}
	dev := data.NewDeviceData(rng, task.Gen, *id, classes, data.RandomEnv(rng), *volume)
	mon := device.NewMonitor(rng, device.ClassByName(*devClass))

	var cached *modular.SubModel
	for step := 1; step <= *steps; step++ {
		if step > 1 {
			dev.Shift(*shift)
			mon.Step()
		}
		// Importance from local data via the (downloaded) selector.
		probeN := dev.Train.Len()
		if probeN > 64 {
			probeN = 64
		}
		idx := make([]int, probeN)
		for i := range idx {
			idx[i] = i
		}
		x, _ := dev.Train.Batch(idx)
		imp := skeleton.Importance(x)

		p := mon.Profile()
		budget := budgetFor(skeleton, p)
		sub, err := cl.FetchSubModel(imp, budget)
		if err != nil {
			// Dynamic-edge survival: a lost fetch degrades to the cached
			// sub-model instead of killing the device loop.
			if cached == nil {
				log.Printf("step %d: fetch lost (%v); no cached sub-model yet, skipping step", step, err)
				continue
			}
			log.Printf("step %d: fetch lost (%v); serving cached sub-model", step, err)
			sub = cached
		}
		cached = sub
		before := fed.EvalSubModel(sub, dev.TestSet(60))
		fed.TrainSubModel(rng, sub, dev.Train, *epochs, 0.01, 16)
		after := fed.EvalSubModel(sub, dev.TestSet(60))
		if err := cl.PushUpdate(sub, imp, float64(dev.Train.Len())); err != nil {
			log.Printf("step %d: push lost (%v); round proceeds without this device", step, err)
		}
		in, out := cl.Traffic()
		log.Printf("step %d: %d modules, acc %.3f → %.3f, traffic ↓%s ↑%s",
			step, sub.NumModules(), before, after, metrics.FmtBytes(in), metrics.FmtBytes(out))
	}
	if rs := cl.RetryStats(); rs.Retries+rs.Reconnects+rs.Timeouts > 0 {
		log.Printf("resilience: %d retries, %d reconnects, %d call timeouts", rs.Retries, rs.Reconnects, rs.Timeouts)
	}
}

// budgetFor grants the stem+head plus a capability fraction of the module
// pool, mirroring the simulation's budget shaping.
func budgetFor(m *modular.Model, p device.Profile) modular.Budget {
	stem, head, mods := m.ModuleCosts()
	var b modular.Budget
	for _, layer := range mods {
		for _, mc := range layer {
			b.CommBytes += float64(mc.Bytes)
			b.FwdFLOPs += float64(mc.FwdFLOPs)
			b.MemElems += float64(mc.TrainMemEl)
		}
	}
	frac := 0.4 * p.ComputeFLOPS / device.JetsonNano().ComputeFLOPS
	if frac < 0.2 {
		frac = 0.2
	}
	if frac > 0.8 {
		frac = 0.8
	}
	b.CommBytes = float64(stem.Bytes+head.Bytes) + frac*b.CommBytes
	b.FwdFLOPs = float64(stem.FwdFLOPs+head.FwdFLOPs) + frac*b.FwdFLOPs
	b.MemElems = float64(stem.TrainMemEl+head.TrainMemEl) + frac*b.MemElems
	return b
}
