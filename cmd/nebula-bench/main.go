// Command nebula-bench runs the hot-kernel benchmarks and writes
// BENCH_kernels.json, the machine-readable performance trajectory the repo
// is held to from PR 3 onward. Each entry records ns/op, B/op and allocs/op;
// packed-GEMM entries additionally record the speedup over the retained
// naive reference (tensor.GemmNaive) measured in the same run, on the same
// machine.
//
// Usage:
//
//	go run ./cmd/nebula-bench            # writes BENCH_kernels.json
//	go run ./cmd/nebula-bench -out path  # writes elsewhere
//
// docs/PERF.md explains how to read the output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Result is one benchmark row of BENCH_kernels.json.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// SpeedupVsNaive is packed-kernel time ÷ naive-kernel time on the same
	// shape in the same run; 0 when the row has no naive counterpart.
	SpeedupVsNaive float64 `json:"speedup_vs_naive,omitempty"`
}

// Report is the BENCH_kernels.json document.
type Report struct {
	GoVersion  string   `json:"go_version"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Results    []Result `json:"results"`
}

// gemmBench returns a benchmark closure multiplying [m,k]·[k,n] through
// either the dispatching Gemm (packed for these shapes) or GemmNaive.
func gemmBench(m, n, k int, naive bool) func(b *testing.B) {
	return func(b *testing.B) {
		rng := tensor.NewRNG(1)
		a := tensor.New(m, k)
		bb := tensor.New(k, n)
		c := tensor.New(m, n)
		rng.FillNormal(a, 0, 1)
		rng.FillNormal(bb, 0, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if naive {
				tensor.GemmNaive(false, false, m, n, k, 1, a.Data, bb.Data, 0, c.Data)
			} else {
				tensor.Gemm(false, false, m, n, k, 1, a.Data, bb.Data, 0, c.Data)
			}
		}
	}
}

// denseStep benchmarks a steady-state Dense forward+backward pair.
func denseStep(b *testing.B) {
	rng := tensor.NewRNG(8)
	d := nn.NewDense(rng, 256, 128)
	x := tensor.New(64, 256)
	g := tensor.New(64, 128)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(g, 0, 1)
	d.Forward(x, true)
	d.Backward(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Forward(x, true)
		d.Backward(g)
	}
}

// convStep benchmarks a steady-state Conv2D forward+backward pair.
func convStep(b *testing.B) {
	rng := tensor.NewRNG(9)
	conv := nn.NewConv2D(rng, 16, 32, 3, 1, 1)
	x := tensor.New(16, 16, 12, 12)
	g := tensor.New(16, 32, 12, 12)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(g, 0, 1)
	conv.Forward(x, true)
	conv.Backward(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, true)
		conv.Backward(g)
	}
}

func run(name string, fn func(b *testing.B)) Result {
	r := testing.Benchmark(fn)
	res := Result{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	fmt.Fprintf(os.Stderr, "%-28s %12.0f ns/op %8d B/op %6d allocs/op\n",
		name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	return res
}

func main() {
	out := flag.String("out", "BENCH_kernels.json", "output path for the kernel benchmark report")
	flag.Parse()

	// Packed/naive pairs on the two representative shapes: the square
	// 128×128×128 and the im2col shape of a 64-filter 3×3×64 conv over a
	// 16×16 plane.
	pairs := []struct {
		name    string
		m, n, k int
	}{
		{"gemm_128x128x128", 128, 128, 128},
		{"gemm_conv_64x256x576", 64, 256, 576},
	}
	var results []Result
	for _, p := range pairs {
		packed := run(p.name, gemmBench(p.m, p.n, p.k, false))
		naive := run(p.name+"_naive", gemmBench(p.m, p.n, p.k, true))
		if packed.NsPerOp > 0 {
			packed.SpeedupVsNaive = naive.NsPerOp / packed.NsPerOp
		}
		results = append(results, packed, naive)
	}
	results = append(results,
		run("dense_step_64x256x128", denseStep),
		run("conv_step_b16_c16x32_12x12", convStep),
	)

	rep := Report{
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Results:    results,
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "nebula-bench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "nebula-bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "nebula-bench: wrote %s\n", *out)
}
