// Command nebula-bench runs the hot-kernel benchmarks and writes
// BENCH_kernels.json, the machine-readable performance trajectory the repo
// is held to from PR 3 onward. Each entry records ns/op, B/op and allocs/op;
// packed-GEMM entries additionally record the speedup over the retained
// naive reference (tensor.GemmNaive) measured in the same run, on the same
// machine.
//
// Usage:
//
//	go run ./cmd/nebula-bench            # writes BENCH_kernels.json
//	go run ./cmd/nebula-bench -out path  # writes elsewhere
//
// docs/PERF.md explains how to read the output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Result is one benchmark row of BENCH_kernels.json.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// PeakScratchBytes is the high-water mark of live scratch-arena bytes
	// during the benchmark (tensor.ScratchPeakBytes): the working-set cost a
	// row imposes on the arena. The implicit-conv rows exist to show this
	// shrinking against their im2col counterparts, which still materialize
	// the column matrix.
	PeakScratchBytes int64 `json:"peak_scratch_bytes"`
	// SpeedupVsNaive is packed-kernel time ÷ naive-kernel time on the same
	// shape in the same run; 0 when the row has no naive counterpart.
	SpeedupVsNaive float64 `json:"speedup_vs_naive,omitempty"`
	// SpeedupVsIm2col is im2col-path time ÷ implicit-path time on the same
	// conv shape in the same run; 0 when the row has no im2col counterpart.
	SpeedupVsIm2col float64 `json:"speedup_vs_im2col,omitempty"`
}

// Report is the BENCH_kernels.json document.
type Report struct {
	GoVersion  string `json:"go_version"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// CPUFeatures and KernelMode record the SIMD provenance of the numbers:
	// which instruction sets were detected and which micro-kernel the run
	// used (strict kernels are bitwise-pinned; fast-avx2 never appears here
	// because nebula-bench measures the artifact-producing configuration).
	CPUFeatures string   `json:"cpu_features"`
	KernelMode  string   `json:"kernel_mode"`
	Results     []Result `json:"results"`
}

// gemmBench returns a benchmark closure multiplying [m,k]·[k,n] through
// either the dispatching Gemm (packed for these shapes) or GemmNaive.
func gemmBench(m, n, k int, naive bool) func(b *testing.B) {
	return func(b *testing.B) {
		rng := tensor.NewRNG(1)
		a := tensor.New(m, k)
		bb := tensor.New(k, n)
		c := tensor.New(m, n)
		rng.FillNormal(a, 0, 1)
		rng.FillNormal(bb, 0, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if naive {
				tensor.GemmNaive(false, false, m, n, k, 1, a.Data, bb.Data, 0, c.Data)
			} else {
				tensor.Gemm(false, false, m, n, k, 1, a.Data, bb.Data, 0, c.Data)
			}
		}
	}
}

// denseStep benchmarks a steady-state Dense forward+backward pair.
func denseStep(b *testing.B) {
	rng := tensor.NewRNG(8)
	d := nn.NewDense(rng, 256, 128)
	x := tensor.New(64, 256)
	g := tensor.New(64, 128)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(g, 0, 1)
	d.Forward(x, true)
	d.Backward(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Forward(x, true)
		d.Backward(g)
	}
}

// convShape is one geometry of the implicit-vs-im2col pair rows. The two
// shapes bracket the repo's bench points: c16x32_12x12 is the Conv2D layer
// behind conv_step_b16_c16x32_12x12, and c64x64_16x16 is the convolution
// whose column matrix is the gemm_conv_64x256x576 shape (kdim 576, 256
// output pixels, 64 filters).
type convShape struct {
	name  string
	g     tensor.ConvGeom
	outC  int
	batch int
}

var convShapes = []convShape{
	{"b16_c16x32_12x12", tensor.ConvGeom{Channels: 16, Height: 12, Width: 12, KH: 3, KW: 3, Stride: 1, Pad: 1}, 32, 16},
	{"b16_c64x64_16x16", tensor.ConvGeom{Channels: 64, Height: 16, Width: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}, 64, 16},
}

// convOperands builds deterministic operands for one conv shape: a shared
// weight/grad set and per-sample images.
func convOperands(s convShape) (w, dw []float32, src, out, grad, dx [][]float32) {
	rng := tensor.NewRNG(5)
	g := s.g
	wt := tensor.New(s.outC, g.Kdim())
	rng.FillNormal(wt, 0, 1)
	w = wt.Data
	dw = make([]float32, s.outC*g.Kdim())
	for i := 0; i < s.batch; i++ {
		x := tensor.New(g.Channels, g.Height, g.Width)
		gr := tensor.New(s.outC, g.OutH(), g.OutW())
		rng.FillNormal(x, 0, 1)
		rng.FillNormal(gr, 0, 1)
		src = append(src, x.Data)
		grad = append(grad, gr.Data)
		out = append(out, make([]float32, s.outC*g.Cols()))
		dx = append(dx, make([]float32, g.Channels*g.Height*g.Width))
	}
	return
}

// convImplicit benchmarks one batch of forward+backward through the
// implicit-GEMM path the nn.Conv2D layer uses: pack the weights once per
// batch, then gather each sample's image straight into packed panels.
func convImplicit(s convShape) func(b *testing.B) {
	return func(b *testing.B) {
		w, dw, src, out, grad, dx := convOperands(s)
		var cw tensor.ConvWeights
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cw.PackFwd(w, s.outC, s.g)
			for j := range src {
				cw.Conv(src[j], out[j])
			}
			cw.PackBwd(w, s.outC, s.g)
			for j := range src {
				cw.ConvBack(src[j], grad[j], dw, dx[j])
			}
			cw.Release()
		}
	}
}

// convIm2col benchmarks the same batch through the retained im2col
// reference (materialized column matrix + dispatching Gemm per sample).
func convIm2col(s convShape) func(b *testing.B) {
	return func(b *testing.B) {
		w, dw, src, out, grad, dx := convOperands(s)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range src {
				tensor.ConvGemmRef(w, s.outC, src[j], s.g, out[j])
			}
			for j := range src {
				tensor.ConvGemmBackRef(w, s.outC, src[j], s.g, grad[j], dw, dx[j])
			}
		}
	}
}

// convStep benchmarks a steady-state Conv2D forward+backward pair.
func convStep(b *testing.B) {
	rng := tensor.NewRNG(9)
	conv := nn.NewConv2D(rng, 16, 32, 3, 1, 1)
	x := tensor.New(16, 16, 12, 12)
	g := tensor.New(16, 32, 12, 12)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(g, 0, 1)
	conv.Forward(x, true)
	conv.Backward(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, true)
		conv.Backward(g)
	}
}

// runBest reports the fastest of three runs of fn. Every row — and in
// particular both sides of every speedup ratio — is a min-of-reps
// estimate: on a shared machine a single sequential measurement folds
// whatever interference happened during it into the number, and a ratio of
// two such numbers is dominated by which side caught the noise burst. The
// minimum is the least-interference estimate of the code's actual cost.
func runBest(name string, fn func(b *testing.B)) Result {
	best := run(name, fn)
	for rep := 1; rep < 3; rep++ {
		if r := run(name, fn); r.NsPerOp < best.NsPerOp {
			best = r
		}
	}
	return best
}

func run(name string, fn func(b *testing.B)) Result {
	tensor.ResetScratchPeak()
	r := testing.Benchmark(fn)
	res := Result{
		Name:             name,
		NsPerOp:          float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:       r.AllocedBytesPerOp(),
		AllocsPerOp:      r.AllocsPerOp(),
		PeakScratchBytes: tensor.ScratchPeakBytes(),
	}
	fmt.Fprintf(os.Stderr, "%-28s %12.0f ns/op %8d B/op %6d allocs/op %9d peak-scratch-B\n",
		name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.PeakScratchBytes)
	return res
}

func main() {
	out := flag.String("out", "BENCH_kernels.json", "output path for the kernel benchmark report")
	flag.Parse()

	// Packed/naive pairs on the two representative shapes: the square
	// 128×128×128 and the im2col shape of a 64-filter 3×3×64 conv over a
	// 16×16 plane.
	pairs := []struct {
		name    string
		m, n, k int
	}{
		{"gemm_128x128x128", 128, 128, 128},
		{"gemm_conv_64x256x576", 64, 256, 576},
	}
	var results []Result
	for _, p := range pairs {
		packed := runBest(p.name, gemmBench(p.m, p.n, p.k, false))
		naive := runBest(p.name+"_naive", gemmBench(p.m, p.n, p.k, true))
		if packed.NsPerOp > 0 {
			packed.SpeedupVsNaive = naive.NsPerOp / packed.NsPerOp
		}
		results = append(results, packed, naive)
	}
	// Implicit-GEMM conv against the retained im2col reference, forward +
	// backward over a 16-sample batch. The implicit rows carry the speedup
	// and — via peak_scratch_bytes — the working-set reduction from never
	// materializing the column matrix.
	for _, s := range convShapes {
		implicit := runBest("conv_implicit_"+s.name, convImplicit(s))
		im2col := runBest("conv_im2col_"+s.name, convIm2col(s))
		if implicit.NsPerOp > 0 {
			implicit.SpeedupVsIm2col = im2col.NsPerOp / implicit.NsPerOp
		}
		results = append(results, implicit, im2col)
	}
	results = append(results,
		runBest("dense_step_64x256x128", denseStep),
		runBest("conv_step_b16_c16x32_12x12", convStep),
	)

	rep := Report{
		GoVersion:   runtime.Version(),
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		CPUFeatures: tensor.CPUFeatures(),
		KernelMode:  tensor.KernelMode(),
		Results:     results,
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "nebula-bench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "nebula-bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "nebula-bench: wrote %s\n", *out)
}
