// Command nebula-spans analyzes a distributed span stream (JSON lines from
// the /spans admin endpoint or a -spans file written by nebula-sim): it
// reconstructs each trace's parent/child tree, prints per-round critical
// paths, and aggregates self-time by span kind so the dominant cost in the
// edge-cloud RPC plane is visible at a glance (docs/OBSERVABILITY.md
// "Tracing").
//
// Usage:
//
//	nebula-spans spans.jsonl
//	curl -s http://127.0.0.1:PORT/spans | nebula-spans -
//	nebula-spans -check spans.jsonl
//	nebula-spans -waterfall -top 2 spans.jsonl
//
// -check validates the structural invariant a complete capture satisfies —
// every non-root span's parent exists within its trace — and prints one
// machine-greppable line (traces= spans= roots= round_roots=); ci.sh gates
// on it. A flight recorder that wrapped can legitimately fail the parent
// check; size the ring to the run or treat the failure as "truncated".
//
// -waterfall renders each trace as an indented tree with offset/duration
// columns, most recent traces last; -top N keeps only the N largest.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/obs/span"
)

func main() {
	check := flag.Bool("check", false, "validate parent links and print a summary line (exit 1 on orphans)")
	waterfall := flag.Bool("waterfall", false, "render each trace as an indented timing tree")
	top := flag.Int("top", 0, "with -waterfall, show only the N traces with the most spans (0 = all)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: nebula-spans [-check] [-waterfall [-top N]] <file.jsonl | ->")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	var r io.Reader = os.Stdin
	if flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "nebula-spans:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	spans, err := span.ReadJSON(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nebula-spans:", err)
		os.Exit(1)
	}
	traces := buildTraces(spans)

	if *check {
		fmt.Printf("traces=%d spans=%d roots=%d round_roots=%d\n",
			len(traces), len(spans), countRoots(traces), countRoundRoots(traces))
		if err := span.ValidateParents(spans); err != nil {
			fmt.Fprintln(os.Stderr, "nebula-spans: check:", err)
			os.Exit(1)
		}
		return
	}
	if *waterfall {
		printWaterfalls(os.Stdout, traces, *top)
		return
	}
	fmt.Printf("spans:  %d across %d traces (%d roots)\n", len(spans), len(traces), countRoots(traces))
	printCriticalPaths(os.Stdout, traces)
	printSelfTime(os.Stdout, traces)
}

// node is one span plus its resolved children, sorted by start offset.
type node struct {
	s        *span.Span
	children []*node
}

// traceTree is one reconstructed trace: its roots (parent 0 or missing) in
// start order, plus the total span count.
type traceTree struct {
	id    span.TraceID
	roots []*node
	n     int
}

// buildTraces groups spans by trace and links children to parents. A span
// whose parent is absent (recorder wrapped mid-trace) is promoted to a root,
// so truncated captures still render instead of vanishing.
func buildTraces(spans []span.Span) []*traceTree {
	byTrace := map[span.TraceID][]*node{}
	var order []span.TraceID
	for i := range spans {
		s := &spans[i]
		if _, seen := byTrace[s.Trace]; !seen {
			order = append(order, s.Trace)
		}
		byTrace[s.Trace] = append(byTrace[s.Trace], &node{s: s})
	}
	var out []*traceTree
	for _, id := range order {
		nodes := byTrace[id]
		byID := make(map[span.SpanID]*node, len(nodes))
		for _, n := range nodes {
			byID[n.s.ID] = n
		}
		t := &traceTree{id: id, n: len(nodes)}
		for _, n := range nodes {
			if parent := byID[n.s.Parent]; n.s.Parent != 0 && parent != nil && parent != n {
				parent.children = append(parent.children, n)
			} else {
				t.roots = append(t.roots, n)
			}
		}
		for _, n := range nodes {
			sortNodes(n.children)
		}
		sortNodes(t.roots)
		out = append(out, t)
	}
	// Traces ordered by their earliest root (round order in a sim capture),
	// trace ID breaking ties so the rendering is deterministic.
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := out[i].start(), out[j].start()
		if si != sj {
			return si < sj
		}
		return out[i].id < out[j].id
	})
	return out
}

func sortNodes(ns []*node) {
	sort.SliceStable(ns, func(i, j int) bool {
		if ns[i].s.Start != ns[j].s.Start {
			return ns[i].s.Start < ns[j].s.Start
		}
		return ns[i].s.ID < ns[j].s.ID
	})
}

func (t *traceTree) start() float64 {
	if len(t.roots) == 0 {
		return 0
	}
	return t.roots[0].s.Start
}

func countRoots(traces []*traceTree) int {
	n := 0
	for _, t := range traces {
		n += len(t.roots)
	}
	return n
}

func countRoundRoots(traces []*traceTree) int {
	n := 0
	for _, t := range traces {
		for _, r := range t.roots {
			if r.s.Kind == "fed.round" && r.s.Parent == 0 {
				n++
			}
		}
	}
	return n
}

// printCriticalPaths walks each fed.round root down its slowest-finishing
// child chain — the wall-clock critical path of the round: the sequence of
// operations that, if shortened, would shorten the round itself.
func printCriticalPaths(w io.Writer, traces []*traceTree) {
	printed := false
	for _, t := range traces {
		for _, root := range t.roots {
			if root.s.Kind != "fed.round" {
				continue
			}
			if !printed {
				fmt.Fprintf(w, "\ncritical paths (slowest-finishing child chain per round):\n")
				printed = true
			}
			fmt.Fprintf(w, "  round %d (%s):", root.s.Round, fmtDur(root.s.Dur))
			for n := root; n != nil; n = slowestChild(n) {
				if n != root {
					fmt.Fprintf(w, " → %s", stepLabel(n.s))
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// slowestChild picks the child whose end offset is latest — the one the
// parent actually waited for.
func slowestChild(n *node) *node {
	var worst *node
	for _, c := range n.children {
		if worst == nil || c.s.End() > worst.s.End() {
			worst = c
		}
	}
	return worst
}

func stepLabel(s *span.Span) string {
	label := fmt.Sprintf("%s(%s", s.Kind, fmtDur(s.Dur))
	if s.Device != 0 {
		label += fmt.Sprintf(", dev %d", s.Device)
	}
	if s.Attempt != 0 {
		label += fmt.Sprintf(", attempt %d", s.Attempt)
	}
	if s.Err != "" {
		label += ", err"
	}
	return label + ")"
}

// printSelfTime aggregates self-time — a span's duration minus its
// children's, clamped at zero — by kind, so time spent *in* an operation is
// separated from time spent waiting on its children.
func printSelfTime(w io.Writer, traces []*traceTree) {
	type agg struct {
		kind  string
		self  float64
		total float64
		count int
	}
	byKind := map[string]*agg{}
	var kinds []string
	var visit func(n *node)
	visit = func(n *node) {
		childDur := 0.0
		for _, c := range n.children {
			childDur += c.s.Dur
			visit(c)
		}
		self := n.s.Dur - childDur
		if self < 0 {
			self = 0 // children overlap the parent's span (parallel fan-out)
		}
		a := byKind[n.s.Kind]
		if a == nil {
			a = &agg{kind: n.s.Kind}
			byKind[n.s.Kind] = a
			kinds = append(kinds, n.s.Kind)
		}
		a.self += self
		a.total += n.s.Dur
		a.count++
	}
	for _, t := range traces {
		for _, root := range t.roots {
			visit(root)
		}
	}
	sort.SliceStable(kinds, func(i, j int) bool {
		ai, aj := byKind[kinds[i]], byKind[kinds[j]]
		if ai.self != aj.self {
			return ai.self > aj.self
		}
		return ai.kind < aj.kind
	})
	fmt.Fprintf(w, "\nself-time by span kind (duration minus children, summed):\n")
	fmt.Fprintf(w, "  %-18s %10s %10s %8s\n", "kind", "self", "total", "count")
	for _, k := range kinds {
		a := byKind[k]
		fmt.Fprintf(w, "  %-18s %10s %10s %8d\n", a.kind, fmtDur(a.self), fmtDur(a.total), a.count)
	}
}

// printWaterfalls renders each trace as an indented tree with offset and
// duration columns relative to the trace's first root.
func printWaterfalls(w io.Writer, traces []*traceTree, top int) {
	selected := traces
	if top > 0 && top < len(traces) {
		selected = append([]*traceTree(nil), traces...)
		sort.SliceStable(selected, func(i, j int) bool { return selected[i].n > selected[j].n })
		selected = selected[:top]
		sort.SliceStable(selected, func(i, j int) bool { return selected[i].start() < selected[j].start() })
	}
	for _, t := range selected {
		fmt.Fprintf(w, "trace %016x (%d spans)\n", uint64(t.id), t.n)
		epoch := t.start()
		var visit func(n *node, depth int)
		visit = func(n *node, depth int) {
			s := n.s
			fmt.Fprintf(w, "  %9s %9s %s%s", fmtDur(s.Start-epoch), fmtDur(s.Dur),
				strings.Repeat("· ", depth), s.Kind)
			if s.Device != 0 {
				fmt.Fprintf(w, " dev=%d", s.Device)
			}
			if s.Round != 0 {
				fmt.Fprintf(w, " round=%d", s.Round)
			}
			if s.Attempt != 0 {
				fmt.Fprintf(w, " attempt=%d", s.Attempt)
			}
			if s.Bytes != 0 {
				fmt.Fprintf(w, " bytes=%d", s.Bytes)
			}
			if s.Note != "" {
				fmt.Fprintf(w, " note=%s", s.Note)
			}
			if s.Err != "" {
				fmt.Fprintf(w, " err=%q", s.Err)
			}
			fmt.Fprintln(w)
			for _, c := range n.children {
				visit(c, depth+1)
			}
		}
		for _, root := range t.roots {
			visit(root, 0)
		}
	}
}

// fmtDur renders a duration in seconds with a unit fitted to its magnitude.
func fmtDur(sec float64) string {
	switch {
	case sec == 0:
		return "0"
	case sec < 1e-3:
		return fmt.Sprintf("%.0fµs", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.2fms", sec*1e3)
	default:
		return fmt.Sprintf("%.3fs", sec)
	}
}
