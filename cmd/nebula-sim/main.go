// Command nebula-sim runs the paper's experiments on the simulation
// platform and prints each table/figure as text.
//
// Usage:
//
//	nebula-sim -list
//	nebula-sim -exp table1
//	nebula-sim -exp all -devices 60 -rounds 10 -scale paper -v
//	nebula-sim -exp table1 -seed 7 -seed-audit
//	nebula-sim -exp faults -faults drop=0.25,delay=20ms,reset=0.05 -seed 7 -seed-audit
//	nebula-sim -exp fig10 -workers 1 -trace run.jsonl
//	nebula-sim -exp straggler -seed 7 -seed-audit
//	nebula-sim -exp fig10 -async -staleness-decay 0.5 -trace run.jsonl
//	nebula-sim -exp straggler -faults drop=0.2 -wire -span-sample 1 -spans spans.jsonl -admin-addr 127.0.0.1:0
//
// -async switches every online-stage run to deadline-paced semi-async
// rounds (docs/ASYNC.md); the straggler experiment compares both modes on
// one seeded dynamic fleet regardless of the flag.
//
// -seed-audit runs the experiment twice with the same -seed and fails (exit
// 1) unless both passes produce byte-identical output — the dynamic
// counterpart of nebula-lint's seedrand check: every source of randomness in
// internal/experiments must thread from the single config seed.
//
// -workers bounds per-round device parallelism (default: all CPUs).
// Artifacts — tables, figures, and the -trace log — are bitwise identical
// for every worker count, including 1 (docs/PARALLEL.md); the differential
// gate in ci.sh holds the repo to that.
//
// -trace writes the structured JSONL adaptation log of the online-stage
// Nebula runs. The log carries no wall-clock timestamps, so two runs with
// the same seed (at any -workers values) byte-compare equal. A trace write
// failure is a hard error (exit 1), never a silent truncation.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/edgenet"
	"repro/internal/experiments"
	"repro/internal/fed"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/trace"
)

func main() {
	opt := experiments.Default()
	var (
		exp       = flag.String("exp", "", "experiment id (see -list) or 'all'")
		list      = flag.Bool("list", false, "list available experiments")
		scale     = flag.String("scale", "quick", "experiment scale: quick | paper")
		seedAudit = flag.Bool("seed-audit", false, "run the experiment twice with the same seed and verify byte-identical output")
		faults    = flag.String("faults", "", "inject a seeded lossy link into online-stage experiments, e.g. 'drop=0.25,delay=20ms,reset=0.05' (seed=N to replay a specific fault stream; defaults to -seed)")
		tracePath = flag.String("trace", "", "write the online-stage adaptation log (JSON lines) to this file")

		spansPath  = flag.String("spans", "", "write the distributed span capture (JSON lines, cmd/nebula-spans format) to this file; implies -span-sample 1 unless set")
		spanSample = flag.Float64("span-sample", 0, "sample this fraction of round traces into the span flight recorder (0 = tracing off, 1 = all); the decision is a pure function of (-seed, round), so artifacts stay byte-identical at any rate")

		adminAddr   = flag.String("admin-addr", "", "serve /metrics, /statusz, /healthz and /debug/pprof/ on this address (use 127.0.0.1:0 for an ephemeral port; the bound address is printed to stderr)")
		adminLinger = flag.Duration("admin-linger", 0, "keep the admin server up this long after the run finishes so it can be scraped at quiescence")
	)
	flag.IntVar(&opt.Workers, "workers", runtime.NumCPU(), "per-round device parallelism; artifacts are bitwise identical for every value, including 1")
	flag.Int64Var(&opt.Seed, "seed", opt.Seed, "random seed")
	flag.IntVar(&opt.Devices, "devices", opt.Devices, "fleet size")
	flag.IntVar(&opt.ProxyPerClass, "proxy", opt.ProxyPerClass, "proxy samples per class for cloud pre-training")
	flag.IntVar(&opt.Rounds, "rounds", opt.Rounds, "communication rounds per adaptation step")
	flag.IntVar(&opt.DevicesPerRound, "per-round", opt.DevicesPerRound, "devices sampled per round")
	flag.IntVar(&opt.LocalEpochs, "local-epochs", opt.LocalEpochs, "local epochs per round")
	flag.IntVar(&opt.FinetuneEpochs, "finetune-epochs", opt.FinetuneEpochs, "on-device fine-tuning epochs")
	flag.IntVar(&opt.PretrainEpochs, "pretrain-epochs", opt.PretrainEpochs, "cloud pre-training epochs")
	flag.IntVar(&opt.AdaptSteps, "steps", opt.AdaptSteps, "adaptation steps for fig10/fig11")
	flag.IntVar(&opt.RandomSubModels, "submodels", opt.RandomSubModels, "random sub-models sampled for fig12")
	flag.BoolVar(&opt.Async, "async", false, "deadline-paced semi-async rounds for online-stage experiments (docs/ASYNC.md)")
	flag.Float64Var(&opt.AsyncDeadline, "async-deadline", 0, "per-round sim-time deadline in seconds for -async (0 = auto-calibrate to 2x the first round's median device time)")
	flag.Float64Var(&opt.StalenessDecay, "staleness-decay", 0, "weight multiplier per round of staleness for late updates in -async (0 = default 0.5)")
	flag.IntVar(&opt.Stragglers, "stragglers", opt.Stragglers, "devices pinned at maximum contention in the straggler experiment's dynamic fleet")
	flag.BoolVar(&opt.WireCompress, "wire", false, "run online-stage sub-model exchanges through the wire-format v2 codec (docs/PROTOCOL.md): delta-quantized transfers with exact encoded-size accounting")
	flag.Float64Var(&opt.WireTopK, "wire-topk", 0, "keep only this fraction of uplink delta coordinates under -wire (0 = dense)")
	flag.BoolVar(&opt.WireF16, "wire-f16", false, "float16 codes instead of int8 under -wire")
	flag.BoolVar(&opt.Verbose, "v", false, "print progress lines")
	flag.BoolVar(&opt.Points, "points", false, "also dump figures' raw data columns")
	flag.Parse()

	if *list {
		experiments.WriteIndex(os.Stdout)
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "nebula-sim: -exp is required (or -list)")
		flag.Usage()
		os.Exit(2)
	}
	switch *scale {
	case "quick":
		opt.Scale = fed.ScaleQuick
	case "paper":
		opt.Scale = fed.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "nebula-sim: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *faults != "" {
		cfg, err := edgenet.ParseFaultSpec(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nebula-sim:", err)
			os.Exit(2)
		}
		opt.Faults = cfg
	}
	opt.Out = os.Stdout
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nebula-sim:", err)
			os.Exit(1)
		}
		traceFile = f
		// nil clock: no wall timestamps, so equal-seed runs byte-compare.
		opt.Trace = trace.NewWithClock(f, nil)
	}

	// Span tracing is the same kind of pure observer as the admin plane:
	// write-only wall-clock telemetry behind a deterministic keyed sampler,
	// so attaching a recorder leaves every artifact byte-identical (the
	// differential tests in internal/fed pin this).
	rate := *spanSample
	if *spansPath != "" && rate == 0 {
		rate = 1
	}
	var spans *span.Recorder
	if rate > 0 {
		spans = span.NewRecorder(span.DefaultCapacity)
		spans.SetSampler(opt.Seed, rate)
		opt.Spans = spans
	}

	// The admin plane is pure observer: registries are write-only telemetry
	// and the HTTP goroutines never touch simulation state, so artifacts are
	// byte-identical with or without -admin-addr (ci.sh enforces this by
	// running the seed-audit gate with the admin server enabled).
	var admin *obs.Admin
	if *adminAddr != "" {
		admin = obs.NewAdmin(obs.Default())
		admin.SetState("starting")
		admin.AddSection("round health", fed.RoundHealthSection(spans))
		if spans != nil {
			admin.AddHandler("/spans", spans)
		}
		bound, err := admin.Listen(*adminAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nebula-sim: admin:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "admin: serving on http://%s\n", bound)
		admin.SetState("running")
	}

	start := obs.StartTimer()
	if *seedAudit {
		if err := runSeedAudit(*exp, opt); err != nil {
			fmt.Fprintln(os.Stderr, "nebula-sim:", err)
			os.Exit(1)
		}
	} else if err := experiments.Run(*exp, opt); err != nil {
		fmt.Fprintln(os.Stderr, "nebula-sim:", err)
		os.Exit(1)
	}
	if traceFile != nil {
		// A dropped trace event is silent data corruption downstream
		// (nebula-trace would understate the run); fail loudly instead.
		if err := opt.Trace.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "nebula-sim: trace log:", err)
			os.Exit(1)
		}
		if err := traceFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "nebula-sim: trace log:", err)
			os.Exit(1)
		}
	}
	if *spansPath != "" {
		// Like the trace log: a torn span capture silently understates the
		// run to nebula-spans, so any write failure is a hard error.
		if err := writeSpans(*spansPath, spans); err != nil {
			fmt.Fprintln(os.Stderr, "nebula-sim: span capture:", err)
			os.Exit(1)
		}
	}
	if opt.Verbose {
		fmt.Fprintf(os.Stderr, "done in %s\n", start.Elapsed().Round(time.Millisecond))
	}
	if admin != nil {
		// All experiment work is finished: counters are final, pool gauges
		// are back to zero, and /metrics is byte-stable scrape to scrape.
		admin.SetState("quiescent")
		if *adminLinger > 0 {
			time.Sleep(*adminLinger)
		}
		_ = admin.Close()
	}
}

// writeSpans dumps the flight recorder as JSON lines to path.
func writeSpans(path string, rec *span.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteJSON(f); err != nil {
		_ = f.Close() //nolint:errdrop -- the write error is the one to report
		return err
	}
	return f.Close()
}

// runSeedAudit executes the experiment twice with identical options and
// compares the rendered tables/figures byte for byte. Any divergence means
// some code path draws randomness outside the config seed (the bug class
// nebula-lint's seedrand check flags statically).
func runSeedAudit(exp string, opt experiments.Options) error {
	verbose := opt.Verbose
	opt.Verbose = false // progress lines carry timings; only audit the artifacts
	var first, second bytes.Buffer
	for pass, buf := range []*bytes.Buffer{&first, &second} {
		opt.Out = buf
		if verbose {
			fmt.Fprintf(os.Stderr, "seed-audit: pass %d (seed %d)\n", pass+1, opt.Seed)
		}
		if err := experiments.Run(exp, opt); err != nil {
			return fmt.Errorf("seed-audit pass %d: %w", pass+1, err)
		}
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		fmt.Fprintf(os.Stderr, "seed-audit: FAIL — output diverged between passes (%d vs %d bytes)\n",
			first.Len(), second.Len())
		return fmt.Errorf("experiment %q is not deterministic under seed %d", exp, opt.Seed)
	}
	// Print the (verified) artifact once so the flag composes with normal use.
	if _, err := os.Stdout.Write(first.Bytes()); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "seed-audit: OK — %d bytes identical across two passes of %q (seed %d)\n",
		first.Len(), exp, opt.Seed)
	return nil
}
