// Package repro's root benchmark harness: one testing.B benchmark per table
// and figure of the paper, each driving the corresponding experiment runner
// at a reduced (benchmark-friendly) scale, plus micro-benchmarks of the hot
// kernels and ablation benches for the design choices DESIGN.md calls out.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// Full-scale experiment output comes from cmd/nebula-sim (see EXPERIMENTS.md).
package main

import (
	"io"
	"testing"

	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/fed"
	"repro/internal/modular"
	"repro/internal/nn"
	"repro/internal/solve"
	"repro/internal/tensor"
)

// benchOpts returns experiment options small enough for repeated bench runs.
func benchOpts(b *testing.B) experiments.Options {
	o := experiments.Default()
	o.Out = io.Discard
	o.Devices = 8
	o.ProxyPerClass = 16
	o.Rounds = 2
	o.DevicesPerRound = 4
	o.LocalEpochs = 1
	o.FinetuneEpochs = 2
	o.PretrainEpochs = 2
	o.AdaptSteps = 3
	o.RandomSubModels = 4
	return o
}

// --- one benchmark per paper artifact --------------------------------------

func BenchmarkFig1aDataShiftMotivation(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		experiments.RunFig1a(o)
	}
}

func BenchmarkFig1bContentionLatency(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		experiments.RunFig1b(o)
	}
}

func BenchmarkFig2ResourceSurvey(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		experiments.RunFig2(o)
	}
}

func BenchmarkTable1HARRow(b *testing.B) {
	// The full 7-row table is a CLI-scale run; the bench regenerates its
	// first row (HAR/MLP, all six systems) per iteration.
	o := benchOpts(b)
	rows := experiments.Table1Rows(o)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunRowBench(o, rows[0])
	}
}

func BenchmarkFig7CommunicationCost(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		experiments.RunFig7Row(o, 0)
	}
}

func BenchmarkFig8MemoryFootprint(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		experiments.RunFig8(o)
	}
}

func BenchmarkFig9TrainingLatency(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		experiments.RunFig9(o)
	}
}

func BenchmarkFig10ContinuousAdaptation(b *testing.B) {
	o := benchOpts(b)
	task := fed.HARTask(o.Seed, o.Scale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunContinuousTaskBench(o, task)
	}
}

func BenchmarkFig11AdaptationSummary(b *testing.B) {
	o := benchOpts(b)
	task := fed.HARTask(o.Seed, o.Scale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.RunContinuousTaskBench(o, task)
		experiments.Fig11Table([]*experiments.ContinuousResult{res})
	}
}

func BenchmarkFig12SubModelLandscape(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		experiments.RunFig12(o)
	}
}

func BenchmarkFig13aResourceSensitivity(b *testing.B) {
	o := benchOpts(b)
	rows := experiments.Table1Rows(o)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.NebulaAccuracyAtRatioBench(o, rows[1], 0.3)
	}
}

func BenchmarkFig13bGranularitySensitivity(b *testing.B) {
	o := benchOpts(b)
	task := fed.Image10Task(o.Seed, o.Scale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.NebulaAccuracyAtGranularityBench(o, task, 8)
	}
}

func BenchmarkFig13cConvergenceSpeed(b *testing.B) {
	o := benchOpts(b)
	o.Rounds = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunFig13c(o)
	}
}

// --- kernel micro-benchmarks ------------------------------------------------

func BenchmarkGemm128(b *testing.B) {
	rng := tensor.NewRNG(1)
	a := tensor.New(128, 128)
	bb := tensor.New(128, 128)
	c := tensor.New(128, 128)
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(bb, 0, 1)
	b.SetBytes(128 * 128 * 128 * 2 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(c, a, bb)
	}
}

// BenchmarkGemm128Naive is the retained pre-blocking kernel on the same
// shape; the ratio to BenchmarkGemm128 is the headline speedup recorded in
// BENCH_kernels.json.
func BenchmarkGemm128Naive(b *testing.B) {
	rng := tensor.NewRNG(1)
	a := tensor.New(128, 128)
	bb := tensor.New(128, 128)
	c := tensor.New(128, 128)
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(bb, 0, 1)
	b.SetBytes(128 * 128 * 128 * 2 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.GemmNaive(false, false, 128, 128, 128, 1, a.Data, bb.Data, 0, c.Data)
	}
}

// BenchmarkGemmConvShape is the im2col GEMM shape of a 64-channel 3×3×64
// convolution over a 16×16 plane: [64,576]·[576,256].
func BenchmarkGemmConvShape(b *testing.B) {
	benchGemmShape(b, 64, 256, 576, false)
}

func BenchmarkGemmConvShapeNaive(b *testing.B) {
	benchGemmShape(b, 64, 256, 576, true)
}

func benchGemmShape(b *testing.B, m, n, k int, naive bool) {
	rng := tensor.NewRNG(1)
	a := tensor.New(m, k)
	bb := tensor.New(k, n)
	c := tensor.New(m, n)
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(bb, 0, 1)
	b.SetBytes(int64(m) * int64(n) * int64(k) * 2 * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if naive {
			tensor.GemmNaive(false, false, m, n, k, 1, a.Data, bb.Data, 0, c.Data)
		} else {
			tensor.Gemm(false, false, m, n, k, 1, a.Data, bb.Data, 0, c.Data)
		}
	}
}

// BenchmarkDenseStep measures a steady-state Dense forward+backward pair;
// allocs/op must stay at 0 (pinned by TestDenseZeroAllocSteadyState).
func BenchmarkDenseStep(b *testing.B) {
	rng := tensor.NewRNG(8)
	d := nn.NewDense(rng, 256, 128)
	x := tensor.New(64, 256)
	g := tensor.New(64, 128)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(g, 0, 1)
	d.Forward(x, true)
	d.Backward(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Forward(x, true)
		d.Backward(g)
	}
}

// BenchmarkConvStep measures a steady-state Conv2D forward+backward pair;
// allocs/op must stay at 0 (pinned by TestConvZeroAllocSteadyState).
func BenchmarkConvStep(b *testing.B) {
	rng := tensor.NewRNG(9)
	conv := nn.NewConv2D(rng, 16, 32, 3, 1, 1)
	x := tensor.New(16, 16, 12, 12)
	g := tensor.New(16, 32, 12, 12)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(g, 0, 1)
	conv.Forward(x, true)
	conv.Backward(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, true)
		conv.Backward(g)
	}
}

func BenchmarkConvForward(b *testing.B) {
	rng := tensor.NewRNG(2)
	conv := nn.NewConv2D(rng, 16, 32, 3, 1, 1)
	x := tensor.New(16, 16, 12, 12)
	rng.FillNormal(x, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, false)
	}
}

func BenchmarkModularForward(b *testing.B) {
	rng := tensor.NewRNG(3)
	m := modular.NewModularMLP(rng, 64, 48, 6, modular.DefaultConfig())
	x := tensor.New(32, 64)
	rng.FillNormal(x, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x, nil, false)
	}
}

func BenchmarkSubModelDerivationGreedy(b *testing.B) {
	rng := tensor.NewRNG(4)
	m := modular.NewModularMLP(rng, 64, 48, 6, modular.DefaultConfig())
	x := tensor.New(32, 64)
	rng.FillNormal(x, 0, 1)
	imp := m.Importance(x)
	budget := benchBudget(m, 0.4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Derive(imp, budget, false)
	}
}

// --- ablation benches (design choices from DESIGN.md) ----------------------

// BenchmarkAblationGreedyVsExactKnapsack compares the Eq. 2 solvers.
func BenchmarkAblationGreedyVsExactKnapsack(b *testing.B) {
	rng := tensor.NewRNG(5)
	items := make([]solve.Item, 32)
	for i := range items {
		items[i] = solve.Item{Value: rng.Float64(), Costs: []float64{rng.Float64(), rng.Float64(), rng.Float64()}}
	}
	budgets := []float64{6, 6, 6}
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			solve.GreedyKnapsack(items, budgets, nil)
		}
	})
	b.Run("branch-and-bound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			solve.BranchBoundKnapsack(items, budgets, nil, 50000)
		}
	})
}

// BenchmarkAblationTopK measures how the routing fan-out k changes forward
// cost — the accuracy/latency knob of the module layer.
func BenchmarkAblationTopK(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(kName(k), func(b *testing.B) {
			rng := tensor.NewRNG(6)
			cfg := modular.DefaultConfig()
			cfg.TopK = k
			m := modular.NewModularMLP(rng, 64, 48, 6, cfg)
			x := tensor.New(32, 64)
			rng.FillNormal(x, 0, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Forward(x, nil, false)
			}
		})
	}
}

func kName(k int) string {
	return "k=" + string(rune('0'+k))
}

// BenchmarkAblationModuleWiseVsNaiveAverage contrasts Nebula's module-wise
// importance-weighted aggregation with naive overlapped averaging (the
// conflict-prone strategy Section 5.2 argues against). Reported metric: the
// post-aggregation accuracy drop of naive averaging (logged once).
func BenchmarkAblationModuleWiseVsNaiveAverage(b *testing.B) {
	rng := tensor.NewRNG(7)
	gen := data.NewSynthHAR(3)
	m := modular.NewModularMLP(rng, 64, 48, 6, modular.DefaultConfig())
	proxy := data.MakeBalancedDataset(rng, gen, data.DefaultEnv(), 20)
	tc := modular.DefaultTrainConfig()
	tc.Epochs = 2
	m.TrainEndToEnd(rng, proxy, tc)
	subs := make([]*modular.Update, 4)
	for i := range subs {
		active := [][]int{{i % 4, (i + 1) % 4, 15}}
		sub := m.Extract(active)
		imp := m.Importance(probeBatch(rng))
		subs[i] = &modular.Update{Sub: sub, Importance: imp, Weight: 50}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.AggregateModuleWise(subs)
	}
}

func probeBatch(rng *tensor.RNG) *tensor.Tensor {
	x := tensor.New(16, 64)
	rng.FillNormal(x, 0, 1)
	return x
}

func benchBudget(m *modular.Model, frac float64) modular.Budget {
	stem, head, mods := m.ModuleCosts()
	var bgt modular.Budget
	for _, layer := range mods {
		for _, mc := range layer {
			bgt.CommBytes += float64(mc.Bytes)
			bgt.FwdFLOPs += float64(mc.FwdFLOPs)
			bgt.MemElems += float64(mc.TrainMemEl)
		}
	}
	bgt.CommBytes = float64(stem.Bytes+head.Bytes) + frac*bgt.CommBytes
	bgt.FwdFLOPs = float64(stem.FwdFLOPs+head.FwdFLOPs) + frac*bgt.FwdFLOPs
	bgt.MemElems = float64(stem.TrainMemEl+head.TrainMemEl) + frac*bgt.MemElems
	return bgt
}
