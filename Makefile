# Nebula reproduction — common workflows.

GO ?= go

.PHONY: all build test vet lint lint-json race check bench sweep examples clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis: the typed whole-program engine
# (cross-package RNG-escape, lock-scope, and artifact-taint dataflow; see
# docs/ANALYSIS.md). `make lint-json` emits the byte-stable JSON report.
lint:
	$(GO) run ./cmd/nebula-lint ./...

lint-json:
	$(GO) run ./cmd/nebula-lint -json ./...

race:
	$(GO) test -race ./...

# The CI gate: build, vet, nebula-lint, and the race-instrumented test
# suite. Everything must exit 0. See docs/ANALYSIS.md for the checks.
check: build vet lint race

test:
	$(GO) test ./...

# Kernel benchmarks → BENCH_kernels.json (ns/op, allocs/op, speedup vs the
# naive reference; see docs/PERF.md), the parallel-round benchmark →
# BENCH_parallel.json (docs/PARALLEL.md), then the per-figure benches.
bench:
	$(GO) run ./cmd/nebula-bench
	$(GO) run ./cmd/nebula-parbench
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Regenerate every table and figure (quick profile).
sweep:
	$(GO) run ./cmd/nebula-sim -exp all -v

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/videoanalytics
	$(GO) run ./examples/testbed
	$(GO) run ./examples/submodel_explorer
	$(GO) run ./examples/heterogeneity

# Artifacts required by the reproduction protocol.
artifacts:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem -benchtime=1x ./... 2>&1 | tee bench_output.txt

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
