# Nebula reproduction — common workflows.

GO ?= go

.PHONY: all build test vet bench sweep examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One benchmark per paper table/figure plus kernel/ablation benches.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Regenerate every table and figure (quick profile).
sweep:
	$(GO) run ./cmd/nebula-sim -exp all -v

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/videoanalytics
	$(GO) run ./examples/testbed
	$(GO) run ./examples/submodel_explorer
	$(GO) run ./examples/heterogeneity

# Artifacts required by the reproduction protocol.
artifacts:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem -benchtime=1x ./... 2>&1 | tee bench_output.txt

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
